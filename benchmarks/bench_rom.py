"""Closed-loop control traces through the certified reduced-order kernel.

Runs the same PI-regulated closed loop (ROM off, ROM cold, ROM warm)
on 64x64 and 128x128 grids and checks the reduced-order PR's
acceptance criteria:

* the ROM trace agrees with the full-order trace to within its own
  certified error bound, and that bound stays <= the 1e-3 K default
  tolerance;
* on the 128x128 grid the warm ROM loop beats the full-order loop
  >= 10x wall-clock (the cold loop pays the one-off basis build,
  reported separately — sweeps and the serve pool amortize it);
* a warm trace needs >= 5x fewer full-order solve columns than the
  full loop's one-solve-per-step.

Measurements land in ``BENCH_rom.json`` at the repo root (schema:
:func:`repro.io.results.bench_report_to_json`).  ``BENCH_ROM_GRIDS``
(comma-separated side lengths) and ``BENCH_ROM_STEPS`` select a fast
subset for CI; the 10x assertion skips itself when no 128x128 grid is
in the list.

Run:  pytest benchmarks/bench_rom.py -s
      python benchmarks/bench_rom.py
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from bench_backends import _build_problem_model
from repro.control.controllers import PiController
from repro.control.loop import ClosedLoopSimulator
from repro.control.sensors import SensorArray
from repro.io.results import bench_report_to_json
from repro.linalg.mor import DEFAULT_ROM_TOL_K

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_GRIDS = "64,128"
_DEFAULT_STEPS = 400

#: Integration and control cadence: 1 ms steps, 10 ms control period —
#: the regime the certified envelope was tuned for.
_DT_S = 1e-3
_CONTROL_PERIOD_S = 1e-2


def _grid_sides():
    text = os.environ.get("BENCH_ROM_GRIDS", _DEFAULT_GRIDS)
    sides = sorted({int(part) for part in text.split(",") if part.strip()})
    if not sides:
        raise ValueError("BENCH_ROM_GRIDS selected no grids")
    return sides


def _steps():
    return int(os.environ.get("BENCH_ROM_STEPS", _DEFAULT_STEPS))


#: Basis size for the ROM loops.  Headroom above the 48-column default
#: keeps the certified envelope (which accumulates over a trace and
#: never credits time-cancellation) well below the 1e-3 K tolerance
#: across the full 400-step horizon, so warm traces run entirely in
#: the reduced space instead of refining near the tolerance floor.
_ROM_DIM = 192


def _build_loop(model, sensors, setpoint_c, rom):
    controller = PiController(setpoint_c=setpoint_c, kp=0.8, ki=0.2, i_max=8.0)
    return ClosedLoopSimulator(
        model, controller, sensors,
        dt=_DT_S, control_period=_CONTROL_PERIOD_S,
        rom=rom, rom_dim=_ROM_DIM,
    )


def _measure(side, steps):
    model = _build_problem_model(side)
    passive = model.solve(0.0)
    tiles = set(model.tec_tiles)
    tiles.add(passive.peak_tile)
    sensors = SensorArray(tiles, noise_std_c=0.0, quantization_c=0.0, seed=0)
    setpoint_c = passive.peak_silicon_c - 5.0

    base = {
        "grid": "{0}x{0}".format(side),
        "side": side,
        "num_nodes": int(model.num_nodes),
        "tecs": len(model.tec_tiles),
        "steps": steps,
        "dt_s": _DT_S,
        "rom_tol_k": DEFAULT_ROM_TOL_K,
        "rom_dim_requested": _ROM_DIM,
    }

    full_result = _build_loop(model, sensors, setpoint_c, "off").run(steps)
    entries = [dict(
        base, mode="full", wall_s=float(full_result.wall_s),
        full_solve_columns=steps,
        factorizations=int(full_result.factorizations),
    )]

    # Cold: the basis build happens at construction time.
    build_start = time.perf_counter()
    cold_loop = _build_loop(model, sensors, setpoint_c, "always")
    basis_build_s = time.perf_counter() - build_start
    for mode, loop in (("rom_cold", cold_loop),
                       ("rom_warm", _build_loop(model, sensors, setpoint_c,
                                                "always"))):
        result = loop.run(steps)
        gap = float(np.max(np.abs(
            result.true_peak_c - full_result.true_peak_c
        )))
        entry = dict(
            base,
            mode=mode,
            wall_s=float(result.wall_s),
            basis_build_s=basis_build_s if mode == "rom_cold" else 0.0,
            certified_error_k=float(result.rom["certified_error_k"]),
            true_gap_vs_full_k=gap,
            rom_dim=int(result.rom["dim"]),
            full_solve_columns=int(result.rom["full_solve_columns"]),
            rom_steps=int(result.rom["rom_steps"]),
            enrichments=int(result.rom["enrichments"]),
            restarts=int(result.rom["restarts"]),
            speedup_vs_full=float(full_result.wall_s / result.wall_s),
            solve_column_ratio=(
                steps / max(1, int(result.rom["full_solve_columns"]))
            ),
        )
        entries.append(entry)
    return entries


def run_workload(sides=None, steps=None):
    """Measure every mode on every grid; ``BENCH_rom.json`` shape."""
    steps = steps if steps is not None else _steps()
    entries = []
    for side in sides if sides is not None else _grid_sides():
        entries.extend(_measure(side, steps))
    metadata = {
        "workload": "PI closed-loop trace, full-order vs certified ROM",
        "dt_s": _DT_S,
        "control_period_s": _CONTROL_PERIOD_S,
        "rom_tol_k": DEFAULT_ROM_TOL_K,
        "cpu_count": os.cpu_count(),
    }
    return entries, metadata


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def workload():
    return run_workload()


def _print_entries(entries):
    print()
    for entry in entries:
        extra = ""
        if entry["mode"] != "full":
            extra = "  certified {:.2e} K, gap {:.2e} K, {} cols".format(
                entry["certified_error_k"], entry["true_gap_vs_full_k"],
                entry["full_solve_columns"],
            )
        print("{:>9} {:<9} {:8.3f} s{}".format(
            entry["grid"], entry["mode"], entry["wall_s"], extra
        ))


def test_certified_and_true_error_within_tolerance(workload):
    """Every ROM trace: true gap <= certified bound <= tolerance."""
    entries, _ = workload
    rom_entries = [e for e in entries if e["mode"] != "full"]
    assert rom_entries
    for entry in rom_entries:
        assert entry["certified_error_k"] <= entry["rom_tol_k"] + 1e-12, entry
        assert (
            entry["true_gap_vs_full_k"]
            <= entry["certified_error_k"] + 1e-9
        ), entry


def test_warm_rom_needs_5x_fewer_full_solves(workload):
    """A warm trace runs in the reduced space almost throughout."""
    entries, _ = workload
    warm = [e for e in entries if e["mode"] == "rom_warm"]
    assert warm
    for entry in warm:
        assert entry["solve_column_ratio"] >= 5.0, entry


@pytest.mark.slow
def test_rom_10x_speedup_on_128(workload):
    """The acceptance ratio: >= 10x wall-clock on the 128x128 loop."""
    entries, _ = workload
    _print_entries(entries)
    ratios = {
        entry["mode"]: entry["speedup_vs_full"]
        for entry in entries
        if entry["side"] >= 128 and entry["mode"] != "full"
    }
    if not ratios:
        pytest.skip("no 128x128 grid in BENCH_ROM_GRIDS subset")
    print("rom speedup vs full on 128x128: " + ", ".join(
        "{} {:.1f}x".format(mode, ratio)
        for mode, ratio in sorted(ratios.items())
    ))
    assert ratios["rom_warm"] >= 10.0


def test_writes_bench_json(workload):
    entries, metadata = workload
    path = _REPO_ROOT / "BENCH_rom.json"
    bench_report_to_json("rom", entries, path, metadata=metadata)
    assert path.exists()


if __name__ == "__main__":
    measured, run_metadata = run_workload()
    _print_entries(measured)
    out = _REPO_ROOT / "BENCH_rom.json"
    bench_report_to_json("rom", measured, out, metadata=run_metadata)
    print("written to {}".format(out))
