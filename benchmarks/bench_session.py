"""Solve-session acceptance benchmark: control-loop + nonlinear workloads.

Exercises the two consumers that the unified
:class:`~repro.thermal.session.SolveSession` core was built for and
checks the acceptance criteria of the solve-session PR:

* **Control-loop trace** — a PI controller sweeping through many
  quantized current levels is run twice on identical problems, once
  under the ``direct`` backend (one sparse LU per distinct level) and
  once under ``reuse`` (one shifted base LU + dense Woodbury caps per
  level).  The traces must agree to 1e-9 K with identical commanded
  currents, and ``SolverStats`` must show the reuse run needing at
  least 3x fewer sparse factorizations.  A
  :class:`~repro.thermal.transient.TransientSimulator` then runs over
  the *same* model at the same ``dt`` and must add **zero** new sparse
  factorizations — it shares the loop's ``C / dt`` session view.

* **Nonlinear iteration** — :class:`~repro.thermal.nonlinear
  .NonlinearSteadyState` converges the temperature-dependent die
  conductivity by blueprint replay; a manual loop rebuilds the model
  from scratch each iteration with the identical damped fixed-point
  updates.  The converged fields must be bit-identical, and the replay
  path must report zero ``full_builds`` with exactly one
  ``incremental_builds`` per iteration.

The measurements are written to ``BENCH_session.json`` at the repo
root (schema: :func:`repro.io.results.bench_report_to_json`) so the
perf trajectory is machine-readable across commits.

The workload list honours the ``BENCH_SESSION_WORKLOADS`` environment
variable (comma-separated subset of ``control,nonlinear``) so CI can
run either half alone.

Run:  pytest benchmarks/bench_session.py -s
      python benchmarks/bench_session.py
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.control.controllers import PiController
from repro.control.loop import ClosedLoopSimulator
from repro.control.sensors import SensorArray
from repro.experiments.benchmarks import load_benchmark
from repro.io.results import bench_report_to_json
from repro.thermal.model import PackageThermalModel
from repro.thermal.nonlinear import NonlinearSteadyState, silicon_conductivity_scale
from repro.thermal.transient import TransientSimulator

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_WORKLOADS = "control,nonlinear"

#: Central hotspot deployment on the alpha floorplan for the nonlinear
#: workload — fixed so that half never pays a GreedyDeploy run.
_TILES = (27, 28, 35, 36)

#: Control-loop shape: the loop runs the alpha *greedy* deployment
#: (its achievable-temperature window is wide enough for a setpoint to
#: be meaningful) from the zero-current steady state, so the PI
#: controller immediately sees a hot package and sweeps the command
#: down through tens of distinct quantized levels as it converges on
#: the setpoint — the many-factorization regime the session exists
#: for.
_LOOP_STEPS = 240
_LOOP_DT_S = 0.01
_LOOP_CONTROL_PERIOD_S = 0.02
_LOOP_QUANTUM_A = 0.01
_LOOP_SETPOINT_C = 85.0

#: Acceptance criteria.
_TRACE_AGREEMENT_K = 1.0e-9
_FACTORIZATION_RATIO = 3.0

_NONLINEAR_CURRENT_A = 1.0


def _workloads():
    text = os.environ.get("BENCH_SESSION_WORKLOADS", _DEFAULT_WORKLOADS)
    items = [part.strip() for part in text.split(",") if part.strip()]
    if not items:
        raise ValueError("BENCH_SESSION_WORKLOADS selected no workloads")
    unknown = [item for item in items if item not in ("control", "nonlinear")]
    if unknown:
        raise ValueError("unknown BENCH_SESSION_WORKLOADS items: {}".format(unknown))
    return items


_GREEDY_TILES = None


def _greedy_tiles():
    """The alpha greedy deployment, computed once per process."""
    global _GREEDY_TILES
    if _GREEDY_TILES is None:
        from repro.core.deploy import greedy_deploy

        _GREEDY_TILES = tuple(greedy_deploy(load_benchmark("alpha")).tec_tiles)
    return _GREEDY_TILES


def _run_loop(backend, tiles):
    """One closed-loop trace under one solver backend.

    A fresh problem per call so the two backends never share solver
    caches or stats.
    """
    problem = load_benchmark("alpha")
    problem.configure_solver(mode=backend)
    model = problem.model(tiles)
    controller = PiController(_LOOP_SETPOINT_C, kp=1.0, ki=0.5, i_max=8.0)
    sensors = SensorArray(tiles, noise_std_c=0.0, quantization_c=0.0, seed=0)
    simulator = ClosedLoopSimulator(
        model,
        controller,
        sensors,
        dt=_LOOP_DT_S,
        control_period=_LOOP_CONTROL_PERIOD_S,
        current_quantum=_LOOP_QUANTUM_A,
        lu_cache_size=64,
    )
    start = time.perf_counter()
    result = simulator.run(_LOOP_STEPS, initial_state="steady")
    wall = time.perf_counter() - start
    return problem, model, result, wall


def _measure_control():
    tiles = _greedy_tiles()
    problem_direct, _, direct, wall_direct = _run_loop("direct", tiles)
    problem_reuse, model_reuse, reuse, wall_reuse = _run_loop("reuse", tiles)

    trace_diff = float(np.max(np.abs(direct.true_peak_c - reuse.true_peak_c)))
    same_currents = bool(np.array_equal(direct.current_a, reuse.current_a))
    splu_direct = int(direct.solver_stats["factorizations"])
    splu_reuse = int(reuse.solver_stats["factorizations"])

    # A transient over the same model at the same dt shares the loop's
    # C/dt view — it must not trigger a single new sparse LU.
    stats_before = problem_reuse.solver_stats.copy()
    simulator = TransientSimulator(model_reuse, current=0.0, dt=_LOOP_DT_S)
    simulator.run(20)
    shared_delta = problem_reuse.solver_stats.diff(stats_before)

    return {
        "workload": "control",
        "steps": _LOOP_STEPS,
        "dt_s": _LOOP_DT_S,
        "current_levels": int(direct.factorizations),
        "wall_direct_s": wall_direct,
        "wall_reuse_s": wall_reuse,
        "max_trace_diff_k": trace_diff,
        "same_currents": same_currents,
        "splu_direct": splu_direct,
        "splu_reuse": splu_reuse,
        "splu_ratio": splu_direct / max(splu_reuse, 1),
        "shared_view_new_splu": int(shared_delta.factorizations),
        "stats_direct": direct.solver_stats,
        "stats_reuse": reuse.solver_stats,
    }


def _manual_nonlinear(problem, current, *, max_iterations=25, tolerance_k=1.0e-6):
    """The nonlinear fixed point with a from-scratch rebuild per step.

    Mirrors :meth:`NonlinearSteadyState.solve` (undamped, default
    exponent) but constructs each iterate's model without a blueprint —
    the baseline the replay path must match bit-for-bit.
    """
    base = PackageThermalModel(
        problem.grid,
        problem.power_map,
        stack=problem.stack,
        tec_tiles=_TILES,
        device=problem.device,
        solver_mode=problem.solver_mode,
    )
    state = base.solve(current)
    scale = np.ones(problem.grid.num_tiles)
    silicon_k = state.silicon_k
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        scale = silicon_conductivity_scale(silicon_k)
        model = PackageThermalModel(
            problem.grid,
            problem.power_map,
            stack=problem.stack,
            tec_tiles=_TILES,
            device=problem.device,
            die_conductivity_scale=scale,
            solver_mode=problem.solver_mode,
        )
        state = model.solve(current)
        change = float(np.max(np.abs(state.silicon_k - silicon_k)))
        silicon_k = state.silicon_k
        if change < tolerance_k:
            break
    return state, iterations


def _measure_nonlinear():
    problem = load_benchmark("alpha")
    model = problem.model(_TILES)
    model.ensure_blueprint()  # recording cost stays out of the deltas

    stats_before = problem.solver_stats.copy()
    start = time.perf_counter()
    replay = NonlinearSteadyState(model).solve(_NONLINEAR_CURRENT_A)
    wall_replay = time.perf_counter() - start
    delta = problem.solver_stats.diff(stats_before)

    start = time.perf_counter()
    rebuilt_state, rebuilt_iterations = _manual_nonlinear(
        problem, _NONLINEAR_CURRENT_A
    )
    wall_rebuild = time.perf_counter() - start

    return {
        "workload": "nonlinear",
        "current_a": _NONLINEAR_CURRENT_A,
        "iterations": int(replay.iterations),
        "converged": bool(replay.converged),
        "peak_shift_c": float(replay.peak_shift_c),
        "wall_replay_s": wall_replay,
        "wall_rebuild_s": wall_rebuild,
        "bitwise_identical": bool(
            np.array_equal(replay.state.theta_k, rebuilt_state.theta_k)
        ),
        "same_iterations": bool(replay.iterations == rebuilt_iterations),
        "full_builds_replay": int(delta.full_builds),
        "incremental_builds_replay": int(delta.incremental_builds),
        "stats_replay": delta.as_dict(),
    }


_MEASURES = {"control": _measure_control, "nonlinear": _measure_nonlinear}


def run_workload(workloads=None):
    """Run the selected workloads; returns ``(entries, metadata)``."""
    entries = [
        _MEASURES[workload]()
        for workload in (workloads if workloads is not None else _workloads())
    ]
    metadata = {
        "workload": "solve-session control-loop + nonlinear acceptance",
        "tiles": list(_TILES),
        "trace_agreement_k": _TRACE_AGREEMENT_K,
        "factorization_ratio": _FACTORIZATION_RATIO,
        "cpu_count": os.cpu_count(),
    }
    return entries, metadata


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def workload():
    return run_workload()


def _entry(workload, name):
    for entry in workload[0]:
        if entry["workload"] == name:
            return entry
    pytest.skip("{} not in BENCH_SESSION_WORKLOADS subset".format(name))


def test_control_loop_backends_agree(workload):
    entry = _entry(workload, "control")
    assert entry["same_currents"]
    assert entry["max_trace_diff_k"] <= _TRACE_AGREEMENT_K, entry["max_trace_diff_k"]


def test_control_loop_fewer_factorizations(workload):
    entry = _entry(workload, "control")
    print()
    print(
        "control: {} levels, splu direct {} vs reuse {} ({:.1f}x), "
        "trace diff {:.2e} K".format(
            entry["current_levels"], entry["splu_direct"], entry["splu_reuse"],
            entry["splu_ratio"], entry["max_trace_diff_k"],
        )
    )
    assert entry["current_levels"] >= 3  # the PI actually swept levels
    assert entry["splu_ratio"] >= _FACTORIZATION_RATIO, entry["splu_ratio"]


def test_transient_shares_loop_view(workload):
    entry = _entry(workload, "control")
    assert entry["shared_view_new_splu"] == 0


def test_nonlinear_replay_matches_rebuild(workload):
    entry = _entry(workload, "nonlinear")
    print()
    print(
        "nonlinear: {} iterations, replay {:.3f} s vs rebuild {:.3f} s, "
        "builds {} full + {} incremental".format(
            entry["iterations"], entry["wall_replay_s"], entry["wall_rebuild_s"],
            entry["full_builds_replay"], entry["incremental_builds_replay"],
        )
    )
    assert entry["converged"]
    assert entry["same_iterations"]
    assert entry["bitwise_identical"]
    assert entry["full_builds_replay"] == 0
    assert entry["incremental_builds_replay"] == entry["iterations"]


def test_writes_bench_json(workload):
    entries, metadata = workload
    path = _REPO_ROOT / "BENCH_session.json"
    bench_report_to_json("session", entries, path, metadata=metadata)
    assert path.exists()


if __name__ == "__main__":
    measured_entries, run_metadata = run_workload()
    for item in measured_entries:
        if item["workload"] == "control":
            print(
                "control: {} levels, splu {} -> {} ({:.1f}x), "
                "trace diff {:.2e} K, shared-view new splu {}".format(
                    item["current_levels"], item["splu_direct"],
                    item["splu_reuse"], item["splu_ratio"],
                    item["max_trace_diff_k"], item["shared_view_new_splu"],
                )
            )
        else:
            print(
                "nonlinear: {} iterations, bitwise {}, builds {} full "
                "+ {} incremental, replay {:.3f} s vs rebuild {:.3f} s".format(
                    item["iterations"], item["bitwise_identical"],
                    item["full_builds_replay"], item["incremental_builds_replay"],
                    item["wall_replay_s"], item["wall_rebuild_s"],
                )
            )
    out = _REPO_ROOT / "BENCH_session.json"
    bench_report_to_json("session", measured_entries, out, metadata=run_metadata)
    print("written to {}".format(out))
