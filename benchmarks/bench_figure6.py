"""Figure 6: h_kl(i) — non-negative, convex, diverging at lambda_m.

Prints the sampled influence-coefficient curves and asserts the three
properties the figure illustrates (Lemma 3, Theorem 3, Theorem 2).
The timed benchmark measures one full figure regeneration.

Run:  pytest benchmarks/bench_figure6.py --benchmark-only -s
"""

import pytest

from repro.experiments.figures import figure6_data


def test_figure6_shape():
    data = figure6_data(samples=25)
    print()
    print("lambda_m = {:.2f} A".format(data.lambda_m))
    header = "{:>10}".format("i (A)") + "".join(
        "{:>16}".format(label) for label in data.curves
    )
    print(header)
    for j in range(0, len(data.currents), 3):
        row = "{:>10.2f}".format(data.currents[j]) + "".join(
            "{:>16.4f}".format(series[j]) for series in data.curves.values()
        )
        print(row)
    assert data.nonnegative, "Lemma 3 violated: negative influence coefficient"
    assert data.convex, "Theorem 3 violated: non-convex h_kl(i)"
    assert data.diverging, "Theorem 2 violated: no divergence at lambda_m"


@pytest.mark.benchmark(group="figure6")
def test_figure6_generation(benchmark):
    data = benchmark.pedantic(
        lambda: figure6_data(samples=15), rounds=3, iterations=1
    )
    assert data.convex
