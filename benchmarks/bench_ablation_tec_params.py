"""Ablation: device parameter sensitivity of the Table I quantities.

Sweeps the TEC Seebeck coefficient and electrical resistance around
the calibrated values and prints how I_opt, the achievable peak, P_TEC
and lambda_m respond — quantifying how the paper's results depend on
the (not fully published) device parameters of reference [1].

Run:  pytest benchmarks/bench_ablation_tec_params.py --benchmark-only -s
"""

import pytest

from repro.experiments.ablations import tec_parameter_sweep


def test_tec_parameter_sweep_shape():
    points = tec_parameter_sweep(
        seebeck_factors=(0.5, 1.0, 1.5),
        resistance_factors=(0.5, 1.0, 2.0),
    )
    print()
    print("{:>12} {:>10} {:>10} {:>10} {:>10} {:>12}".format(
        "alpha (V/K)", "r (mohm)", "I_opt (A)", "peak (C)", "P_TEC (W)",
        "lambda_m (A)"))
    for p in points:
        print("{:>12.1e} {:>10.2f} {:>10.2f} {:>10.2f} {:>10.2f} {:>12.0f}".format(
            p.seebeck, p.resistance * 1e3, p.i_opt_a, p.peak_c, p.p_tec_w,
            p.lambda_m_a))

    by_key = {(p.seebeck, p.resistance): p for p in points}
    alphas = sorted({p.seebeck for p in points})
    resistances = sorted({p.resistance for p in points})
    # stronger Seebeck pumps deeper at fixed resistance.
    for r in resistances:
        assert by_key[(alphas[-1], r)].peak_c < by_key[(alphas[0], r)].peak_c
    # lambda_m scales ~1/alpha.
    ratio = by_key[(alphas[0], resistances[0])].lambda_m_a / by_key[
        (alphas[-1], resistances[0])
    ].lambda_m_a
    assert ratio == pytest.approx(alphas[-1] / alphas[0], rel=0.1)


@pytest.mark.benchmark(group="ablation-tec-params")
def test_parameter_sweep_cost(benchmark):
    points = benchmark.pedantic(
        lambda: tec_parameter_sweep(
            seebeck_factors=(1.0,), resistance_factors=(0.5, 1.0, 2.0)
        ),
        rounds=3,
        iterations=1,
    )
    assert len(points) == 3
