"""Cold-vs-incremental GreedyDeploy race.

Runs the full GreedyDeploy pipeline twice per workload — once with the
per-round-recompute ``cold`` engine and once with the reuse-layered
``incremental`` engine (:mod:`repro.core.engine`) — on the Table I
``alpha`` floorplan and on dense Gaussian-hotspot grids (24x24 up to
48x48), and checks the acceptance criteria of the incremental-engine
PR:

* both engines visit identical rounds (same ``added_tiles`` per
  round) and finish with the identical deployment;
* their optima agree: polished on a *common* model (the deterministic
  :func:`repro.core.current.polish_current` fixed point — raw argmins
  sit on a solver-noise plateau, and polishing on different solver
  backends shifts the shallow parabola vertex by ~1e-6), ``I_opt``
  matches to 1e-6 A and the peak temperature to 1e-6 K;
* on a dense >= 32x32 grid the incremental engine is >= 3x faster
  end-to-end (cold is timed *with* the same final polish so both
  engines deliver the same artifact).

The measurements are written to ``BENCH_deploy.json`` at the repo
root (schema: :func:`repro.io.results.bench_report_to_json`) so the
perf trajectory is machine-readable across commits.

The workload list honours the ``BENCH_DEPLOY_GRIDS`` environment
variable (comma-separated, e.g. ``table1,24``) so CI can run a fast
subset; the speedup assertion skips itself when no >= 32x32 grid is
in the list.

Run:  pytest benchmarks/bench_deploy.py -s
      python benchmarks/bench_deploy.py
"""

import dataclasses
import os
import time
from pathlib import Path

import numpy as np
import pytest
import scipy.optimize  # noqa: F401 — preload so neither engine pays the import

from repro.core.current import polish_current
from repro.core.deploy import greedy_deploy
from repro.core.problem import CoolingSystemProblem
from repro.experiments.benchmarks import load_benchmark
from repro.io.results import bench_report_to_json
from repro.thermal.geometry import TileGrid
from repro.thermal.stack import PackageStack

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_WORKLOADS = "table1,24,32,48"

#: Problem 2 search tolerance for both engines.  Tight enough that the
#: two engines' search centers land close together, so the common
#: polish converges to the same fixed point well inside the 1e-6 A
#: agreement budget.
_CURRENT_TOLERANCE = 1.0e-6

#: Agreement budgets (acceptance criteria).
_CURRENT_AGREEMENT_A = 1.0e-6
_PEAK_AGREEMENT_K = 1.0e-6

#: The speedup assertion only fires on grids at least this large —
#: smaller instances are dominated by per-run constants (bare solve,
#: model assembly) that neither engine can amortize.
_SPEEDUP_MIN_SIDE = 32
_SPEEDUP_TARGET = 3.0

#: Dense-grid hotspot shape: a central Gaussian plus a broad shoulder
#: over a mild background, with the temperature limit placed at the
#: 75th percentile of the bare map.  Offenders then cover ~25% of the
#: die in round 0 and the re-optimized current uncovers a second,
#: much larger offender ring, so the greedy loop takes two rounds —
#: the second warm-started round is what the incremental engine
#: accelerates.  The instance ends infeasible (offenders inside the
#: deployment), mirroring the HC06/HC09 rows of Table I; both engines
#: must agree on that verdict.
_LIMIT_PERCENTILE = 75.0


def _workloads():
    text = os.environ.get("BENCH_DEPLOY_GRIDS", _DEFAULT_WORKLOADS)
    items = [part.strip() for part in text.split(",") if part.strip()]
    if not items:
        raise ValueError("BENCH_DEPLOY_GRIDS selected no workloads")
    return items


def _scaled_stack(die_side):
    """The calibrated stack with spreader/sink grown to fit large dies."""
    stack = PackageStack()
    spreader_side = max(stack.spreader.side, die_side * 1.5)
    sink_side = max(stack.sink.side, spreader_side * 2.0)
    return dataclasses.replace(
        stack,
        spreader=dataclasses.replace(stack.spreader, side=spreader_side),
        sink=dataclasses.replace(stack.sink, side=sink_side),
    )


def _gaussian_power(side):
    ys, xs = np.divmod(np.arange(side * side), side)
    center = (side - 1) / 2.0
    # Distances in 24x24-tile units so the physical hotspot footprint
    # (and with it the round structure) is resolution-independent.
    d2 = ((ys - center) ** 2 + (xs - center) ** 2) * (24.0 / side) ** 2
    shape = (
        0.05
        + 0.5 * np.exp(-d2 / (2.0 * 4.0**2))
        + 0.25 * np.exp(-d2 / (2.0 * 9.0**2))
    )
    return shape * 0.2 * (24.0 / side) ** 2


def _dense_grid_problem(side):
    """A dense hotspot instance; returns one problem per call so the
    two engines never share solver caches."""
    grid = TileGrid(side, side)
    die_side = max(grid.width, grid.height)
    problem = CoolingSystemProblem(
        grid,
        _gaussian_power(side),
        max_temperature_c=1000.0,
        stack=_scaled_stack(die_side),
        name="bench-deploy-{0}x{0}".format(side),
    )
    bare = problem.model(()).solve(0.0)
    limit = float(np.percentile(bare.silicon_c, _LIMIT_PERCENTILE))
    return problem.with_limit(limit)


def _problem_for(workload):
    if workload == "table1":
        return load_benchmark("alpha")
    return _dense_grid_problem(int(workload))


def _run_engine(problem, engine):
    """Time one full GreedyDeploy pipeline, polish included.

    The incremental engine polishes its own optimum; the cold run gets
    the identical treatment so both walls cover the same deliverable.
    """
    start = time.perf_counter()
    result = greedy_deploy(
        problem, current_tolerance=_CURRENT_TOLERANCE, engine=engine
    )
    current = result.current
    if engine == "cold" and result.tec_tiles and result.current_result is not None:
        current, _ = polish_current(
            result.model,
            result.current,
            upper=0.98 * result.current_result.lambda_m,
        )
    wall = time.perf_counter() - start
    return result, float(current), wall


def _common_polish(reference, current):
    """Polish a current on the *reference* (cold) model.

    Comparing optima across engines needs one evaluation oracle: the
    engines run different solver backends in their final rounds, and
    backend round-off alone shifts the polish fixed point by ~1e-6 A
    on shallow objectives.  On a shared model both engines' argmins
    collapse to the same fixed point to ~1e-13 A.
    """
    upper = None
    if reference.current_result is not None:
        upper = 0.98 * reference.current_result.lambda_m
    polished, _ = polish_current(reference.model, current, upper=upper)
    return polished


def _measure(workload):
    problem_cold = _problem_for(workload)
    problem_inc = _problem_for(workload)
    cold, cold_current, cold_wall = _run_engine(problem_cold, "cold")
    inc, inc_current, inc_wall = _run_engine(problem_inc, "incremental")

    rounds_match = len(cold.iterations) == len(inc.iterations) and all(
        a.added_tiles == b.added_tiles
        for a, b in zip(cold.iterations, inc.iterations)
    )
    ref_cold = _common_polish(cold, cold_current)
    ref_inc = _common_polish(cold, inc_current)
    peak_cold = float(cold.model.solve(ref_cold).peak_silicon_c)
    peak_inc = float(cold.model.solve(ref_inc).peak_silicon_c)

    grid = problem_cold.grid
    return {
        "workload": workload,
        "name": problem_cold.name,
        "side": int(max(grid.rows, grid.cols)),
        "num_tiles": int(grid.num_tiles),
        "limit_c": float(problem_cold.max_temperature_c),
        "feasible": bool(cold.feasible),
        "rounds": len(cold.iterations),
        "tecs": int(cold.num_tecs),
        "wall_cold_s": cold_wall,
        "wall_incremental_s": inc_wall,
        "speedup": cold_wall / inc_wall,
        "same_deployment": bool(cold.tec_tiles == inc.tec_tiles),
        "same_rounds": bool(rounds_match),
        "same_feasible": bool(cold.feasible == inc.feasible),
        "i_opt_cold_a": ref_cold,
        "i_opt_incremental_a": ref_inc,
        "di_a": abs(ref_cold - ref_inc),
        "dpeak_k": abs(peak_cold - peak_inc),
        "evals_cold": cold.deploy_stats.total_evaluations,
        "evals_incremental": inc.deploy_stats.total_evaluations,
        "stats_cold": cold.deploy_stats.as_dict(),
        "stats_incremental": inc.deploy_stats.as_dict(),
    }


def run_workload(workloads=None):
    """Race both engines on every workload.

    Returns ``(entries, metadata)`` in the ``BENCH_deploy.json`` shape:
    one entry per workload with both walls, the speedup and the
    agreement checks.
    """
    entries = [
        _measure(workload)
        for workload in (workloads if workloads is not None else _workloads())
    ]
    metadata = {
        "workload": "GreedyDeploy cold vs incremental, polish included",
        "current_tolerance": _CURRENT_TOLERANCE,
        "limit_percentile": _LIMIT_PERCENTILE,
        "speedup_min_side": _SPEEDUP_MIN_SIDE,
        "speedup_target": _SPEEDUP_TARGET,
        "cpu_count": os.cpu_count(),
    }
    return entries, metadata


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def workload():
    return run_workload()


def test_engines_agree(workload):
    entries, _ = workload
    assert entries
    for entry in entries:
        label = entry["workload"]
        assert entry["same_feasible"], label
        assert entry["same_rounds"], label
        assert entry["same_deployment"], label
        assert entry["di_a"] <= _CURRENT_AGREEMENT_A, (label, entry["di_a"])
        assert entry["dpeak_k"] <= _PEAK_AGREEMENT_K, (label, entry["dpeak_k"])


def test_incremental_speedup_on_dense_grid(workload):
    entries, _ = workload
    print()
    for entry in entries:
        print(
            "{:>12} cold {:7.3f} s  incremental {:7.3f} s  -> {:5.2f}x  "
            "({} rounds, {} TECs, evals {} -> {})".format(
                entry["workload"], entry["wall_cold_s"],
                entry["wall_incremental_s"], entry["speedup"],
                entry["rounds"], entry["tecs"],
                entry["evals_cold"], entry["evals_incremental"],
            )
        )
    ratios = {
        entry["workload"]: entry["speedup"]
        for entry in entries
        if entry["workload"] != "table1" and entry["side"] >= _SPEEDUP_MIN_SIDE
    }
    if not ratios:
        pytest.skip(
            "no >= {0}x{0} dense grid in the list "
            "(BENCH_DEPLOY_GRIDS subset)".format(_SPEEDUP_MIN_SIDE)
        )
    best = max(ratios.values())
    print("incremental speedup on dense grids: " + ", ".join(
        "{} {:.2f}x".format(name, ratio)
        for name, ratio in sorted(ratios.items())
    ))
    assert best >= _SPEEDUP_TARGET


def test_writes_bench_json(workload):
    entries, metadata = workload
    path = _REPO_ROOT / "BENCH_deploy.json"
    bench_report_to_json("deploy", entries, path, metadata=metadata)
    assert path.exists()


if __name__ == "__main__":
    measured_entries, run_metadata = run_workload()
    for item in measured_entries:
        print(
            "{:>12} cold {:7.3f} s  incremental {:7.3f} s  -> {:5.2f}x  "
            "(dI {:.2e} A, dPeak {:.2e} K)".format(
                item["workload"], item["wall_cold_s"],
                item["wall_incremental_s"], item["speedup"],
                item["di_a"], item["dpeak_k"],
            )
        )
    out = _REPO_ROOT / "BENCH_deploy.json"
    bench_report_to_json("deploy", measured_entries, out, metadata=run_metadata)
    print("written to {}".format(out))
