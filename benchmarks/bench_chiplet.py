"""Chiplet-scale composite workload for the thermal core.

Builds the two-chiplet interposer package at growing chiplet
resolutions (two ``side x side`` grids with a proportional gap on a
shared interposer/spreader/sink) and measures:

* composite assembly time and node count — the 2.5D build must stay
  in the same complexity class as the single-die assembly;
* the geometric-multigrid solve of the composite system, against the
  factored-SPD ``cholesky`` baseline where it fits — the acceptance
  column is the 128-per-chiplet package (>= 150k nodes), where the
  chiplet grid only the mg tier handles comfortably must solve and
  agree with the baseline to 1e-6 K;
* on the small column, the independent fine-grained
  :class:`~repro.thermal.reference.ReferenceChipletModel` differential
  (<= 1e-6 K), pinning the physics at benchmark scale too.

The measurements are written to ``BENCH_chiplet.json`` at the repo
root (schema: :func:`repro.io.results.bench_report_to_json`).

The per-chiplet side list honours the ``BENCH_CHIPLET_SIDES``
environment variable (comma-separated, e.g. ``16,32``) so CI can run a
fast subset; the >= 150k-node acceptance assertion skips itself when
no large column is in the list.

Run:  pytest benchmarks/bench_chiplet.py -s
      python benchmarks/bench_chiplet.py
"""

import os
import time
from pathlib import Path

import pytest

from repro.io.results import bench_report_to_json
from repro.thermal.chiplet import demo_two_chiplet_layout
from repro.thermal.model import CompositeThermalModel

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_SIDES = "16,32,128"

#: Per-chiplet total power (W): two of these per package, spread
#: uniformly, so refining the grids changes the resolution only.
_CHIPLET_POWER_W = 30.0

#: The cholesky baseline stops being timed past this node count; the
#: mg column keeps going alone (with its residual as the check).
_CHOLESKY_NODE_LIMIT = 400_000

#: Columns at or below this per-chiplet side also run the independent
#: reference assembly (dense spsolve — fine at small scale only).
_REFERENCE_SIDE_LIMIT = 32

#: The acceptance column: composite grids at least this large must
#: solve through mg (>= 150k nodes for 128-per-chiplet).
_ACCEPTANCE_NODES = 150_000


def _chiplet_sides():
    text = os.environ.get("BENCH_CHIPLET_SIDES", _DEFAULT_SIDES)
    sides = sorted({int(part) for part in text.split(",") if part.strip()})
    if not sides:
        raise ValueError("BENCH_CHIPLET_SIDES selected no sides")
    return sides


def _layout(side):
    gap = max(2, side // 16)
    return demo_two_chiplet_layout(
        rows=side, cols=side, gap=gap, power_w=_CHIPLET_POWER_W
    )


def _time_solve(layout, backend):
    build_start = time.perf_counter()
    model = CompositeThermalModel(layout, solver_mode=backend)
    build_s = time.perf_counter() - build_start
    solve_start = time.perf_counter()
    state = model.solve(0.0)
    solve_s = time.perf_counter() - solve_start
    return model, {
        "backend": backend,
        "build_s": build_s,
        "solve_s": solve_s,
        "peak_c": float(state.peak_silicon_c),
    }


def run_workload(sides=None):
    """Measure the composite build + solve on every column.

    Returns ``(entries, metadata)`` in the ``BENCH_chiplet.json``
    shape: one entry per (column, backend) plus skip records.
    """
    entries = []
    for side in sides if sides is not None else _chiplet_sides():
        layout = _layout(side)
        grid = layout.composite_grid()
        base = {
            "column": "2x{0}x{0}".format(side),
            "side": side,
            "num_chiplets": layout.num_chiplets,
            "num_tiles": int(grid.num_tiles),
            "lattice": [int(grid.rows), int(grid.cols)],
            "total_power_w": layout.total_power_w,
        }
        mg_model, mg_entry = _time_solve(layout, "mg")
        base["num_nodes"] = int(mg_model.num_nodes)
        entries.append(dict(base, **mg_entry))
        if mg_model.num_nodes <= _CHOLESKY_NODE_LIMIT:
            _, chol_entry = _time_solve(layout, "cholesky")
            chol_entry["mg_speedup"] = (
                chol_entry["solve_s"] / mg_entry["solve_s"]
            )
            chol_entry["peak_delta_vs_mg_c"] = abs(
                chol_entry["peak_c"] - mg_entry["peak_c"]
            )
            entries.append(dict(base, **chol_entry))
        else:
            entries.append(dict(
                base,
                backend="cholesky",
                skipped="{} nodes exceed the cholesky limit {}".format(
                    mg_model.num_nodes, _CHOLESKY_NODE_LIMIT
                ),
            ))
        if side <= _REFERENCE_SIDE_LIMIT:
            from repro.thermal.reference import ReferenceChipletModel

            ref_start = time.perf_counter()
            reference = ReferenceChipletModel(layout)
            ref_peak = reference.peak_tile_temperature_c()
            ref_s = time.perf_counter() - ref_start
            entries.append(dict(
                base,
                backend="reference",
                solve_s=ref_s,
                peak_c=float(ref_peak),
                peak_delta_vs_mg_c=abs(float(ref_peak) - mg_entry["peak_c"]),
            ))
    metadata = {
        "workload": "two-chiplet interposer package, composite mg solves",
        "chiplet_power_w": _CHIPLET_POWER_W,
        "acceptance_nodes": _ACCEPTANCE_NODES,
        "cpu_count": os.cpu_count(),
    }
    return entries, metadata


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def workload():
    return run_workload()


def test_backends_and_reference_agree(workload):
    entries, _ = workload
    print()
    for entry in entries:
        if "skipped" in entry:
            print("{:>10} {:<9} skipped: {}".format(
                entry["column"], entry["backend"], entry["skipped"]))
        else:
            print("{:>10} {:<9} {:8.3f} s  peak {:7.3f} C  ({} nodes)".format(
                entry["column"], entry["backend"], entry["solve_s"],
                entry["peak_c"], entry["num_nodes"]))
    deltas = [
        entry["peak_delta_vs_mg_c"]
        for entry in entries
        if entry.get("peak_delta_vs_mg_c") is not None
    ]
    assert deltas, "no column ran a baseline against mg"
    assert max(deltas) <= 1.0e-6


@pytest.mark.slow
def test_mg_solves_chiplet_scale_grid(workload):
    """The acceptance column: >= 150k composite nodes through mg."""
    entries, _ = workload
    large = [
        entry for entry in entries
        if entry.get("backend") == "mg"
        and entry["num_nodes"] >= _ACCEPTANCE_NODES
    ]
    if not large:
        pytest.skip(
            "no >= 150k-node column in the run (BENCH_CHIPLET_SIDES subset)"
        )
    for entry in large:
        print("{}: {} nodes solved through mg in {:.3f} s".format(
            entry["column"], entry["num_nodes"], entry["solve_s"]))
        assert entry["solve_s"] > 0.0
        assert entry["peak_c"] > 45.0  # above ambient: heat actually flowed


def test_writes_bench_json(workload):
    entries, metadata = workload
    path = _REPO_ROOT / "BENCH_chiplet.json"
    bench_report_to_json("chiplet", entries, path, metadata=metadata)
    assert path.exists()


if __name__ == "__main__":
    measured_entries, run_metadata = run_workload()
    for item in measured_entries:
        if "skipped" in item:
            print("{:>10} {:<9} skipped: {}".format(
                item["column"], item["backend"], item["skipped"]))
        else:
            print("{:>10} {:<9} {:8.3f} s  peak {:7.3f} C".format(
                item["column"], item["backend"], item["solve_s"], item["peak_c"]))
    out = _REPO_ROOT / "BENCH_chiplet.json"
    bench_report_to_json("chiplet", measured_entries, out, metadata=run_metadata)
    print("written to {}".format(out))
