"""The fused solve engine vs the legacy per-current path.

Runs GreedyDeploy on the Table I Alpha instance twice — once with the
engine defaults (``mode="reuse"`` + incremental assembly) and once with
the pre-engine configuration (``mode="direct"``, rebuild every model) —
and checks the acceptance criteria of the engine PR:

* the engine performs at least 2x fewer sparse LU factorizations;
* the deployment is identical (same tiles, same current to 1e-3 A,
  same peak to 1e-6 C).

The measured timings and solver stats are written to
``BENCH_solver.json`` at the repo root (schema:
:func:`repro.io.results.bench_report_to_json`) so the perf trajectory
is machine-readable across commits.

Run:  pytest benchmarks/bench_solver_engine.py -s
      pytest benchmarks/bench_solver_engine.py --benchmark-only
"""

import time
from pathlib import Path

import pytest

from repro.core.deploy import greedy_deploy
from repro.experiments.benchmarks import load_benchmark
from repro.io.results import bench_report_to_json

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _timed_greedy(problem):
    start = time.perf_counter()
    result = greedy_deploy(problem)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def engine_run():
    problem = load_benchmark("alpha")  # engine defaults: reuse + incremental
    return _timed_greedy(problem)


@pytest.fixture(scope="module")
def legacy_run():
    problem = load_benchmark("alpha").configure_solver(
        mode="direct", incremental=False
    )
    return _timed_greedy(problem)


@pytest.fixture(scope="module")
def engine_result(engine_run):
    return engine_run[0]


@pytest.fixture(scope="module")
def legacy_result(legacy_run):
    return legacy_run[0]


def test_factorization_reduction(engine_result, legacy_result):
    engine = engine_result.solver_stats
    legacy = legacy_result.solver_stats
    print()
    print("legacy : " + legacy.summary())
    print("engine : " + engine.summary())
    ratio = legacy.factorizations / max(engine.factorizations, 1)
    print("sparse LU reduction: {:.1f}x".format(ratio))
    assert engine.factorizations * 2 <= legacy.factorizations


def test_identical_deployment(engine_result, legacy_result):
    assert engine_result.tec_tiles == legacy_result.tec_tiles
    assert engine_result.feasible == legacy_result.feasible
    assert engine_result.current == pytest.approx(legacy_result.current, abs=1e-3)
    assert engine_result.peak_c == pytest.approx(legacy_result.peak_c, abs=1e-6)


def test_engine_skips_full_rebuilds(engine_result):
    stats = engine_result.solver_stats
    assert stats.incremental_builds > 0
    # only the blueprint-recording first model builds from scratch
    assert stats.full_builds <= 1


def test_writes_bench_json(engine_run, legacy_run):
    entries = []
    for label, (result, wall) in (("engine", engine_run), ("legacy", legacy_run)):
        entries.append({
            "configuration": label,
            "benchmark": "alpha",
            "task": "greedy_deploy",
            "wall_s": wall,
            "feasible": bool(result.feasible),
            "num_tecs": int(result.num_tecs),
            "stats": result.solver_stats.as_dict(),
        })
    entries[0]["speedup_vs_legacy"] = legacy_run[1] / engine_run[1]
    path = _REPO_ROOT / "BENCH_solver.json"
    bench_report_to_json(
        "solver", entries,
        path, metadata={"workload": "GreedyDeploy on alpha, engine vs legacy"},
    )
    assert path.exists()


@pytest.mark.benchmark(group="solver-engine")
def test_greedy_deploy_engine_timing(benchmark):
    def run():
        return greedy_deploy(load_benchmark("alpha"))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.feasible


@pytest.mark.benchmark(group="solver-engine")
def test_greedy_deploy_legacy_timing(benchmark):
    def run():
        problem = load_benchmark("alpha").configure_solver(
            mode="direct", incremental=False
        )
        return greedy_deploy(problem)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.feasible
