"""Conjecture 1 (Section V.C.2): randomized verification campaign.

The paper verified the conjecture on millions of random positive
definite Stieltjes matrices.  The shape test runs a reproducible
campaign (scaled down for CI; scale ``num_matrices`` up at will — the
generator streams) plus the check on the real deployment's system
matrix, printing the worst margins.  The timed benchmark measures the
per-matrix verification cost, which is what bounds a larger campaign.

Run:  pytest benchmarks/bench_conjecture.py --benchmark-only -s
"""

import pytest

from repro.experiments.conjecture import run_conjecture_experiment
from repro.linalg.conjecture import conjecture1_witness
from repro.linalg.stieltjes import random_stieltjes


def test_conjecture_shape():
    outcome = run_conjecture_experiment(
        num_matrices=150, size_range=(3, 12), system_pairs=20, seed=1364
    )
    random_result = outcome.random_result
    print()
    print("random campaign: {} matrices, {} (k,l) pairs, worst margin {:.3e}".format(
        random_result.matrices_tested,
        random_result.pairs_tested,
        random_result.worst_margin,
    ))
    print("system matrices (alpha deployment): {} pairs, worst margin {:.3e}".format(
        outcome.system_pairs, outcome.system_margin))
    assert outcome.holds
    assert not random_result.violations


@pytest.mark.benchmark(group="conjecture")
def test_conjecture_per_matrix_cost(benchmark):
    matrix = random_stieltjes(10, seed=42)
    margin, _ = benchmark(lambda: conjecture1_witness(matrix, check=False))
    assert margin > 0.0
