"""Ablation: tile resolution of the compact model.

Problem 1 fixes the tile size to the TEC footprint (0.5 mm); this
study solves the same physical Alpha power pattern at coarser and
finer granularities, printing peak temperature, node count and solve
time — the accuracy/cost trade the 12x12 choice sits on.

Run:  pytest benchmarks/bench_ablation_grid.py --benchmark-only -s
"""

import pytest

from repro.experiments.ablations import grid_resolution_study


def test_grid_resolution_shape():
    points = grid_resolution_study(resolutions=(6, 12, 24))
    print()
    print("{:>6} {:>10} {:>8} {:>12}".format(
        "tiles", "peak (C)", "nodes", "build+solve"))
    for p in points:
        print("{:>3}x{:<3} {:>9.2f} {:>8} {:>10.3f} s".format(
            p.rows, p.cols, p.peak_c, p.nodes, p.solve_time_s))
    by_res = {p.rows: p for p in points}
    # coarser grids smear the hotspot; finer grids converge.
    assert by_res[6].peak_c < by_res[12].peak_c
    assert abs(by_res[24].peak_c - by_res[12].peak_c) < abs(
        by_res[12].peak_c - by_res[6].peak_c
    )


@pytest.mark.benchmark(group="ablation-grid")
def test_fine_grid_cost(benchmark):
    points = benchmark.pedantic(
        lambda: grid_resolution_study(resolutions=(24,)),
        rounds=3,
        iterations=1,
    )
    assert points[0].nodes > 2000
