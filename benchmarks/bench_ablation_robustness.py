"""Ablation: robustness of the Table I design to device variation.

Beyond-paper study: the Alpha design (greedy deployment + optimized
current) is computed for nominal device parameters; this bench prints
(a) the per-parameter sensitivity of the achieved peak to +10% changes
and (b) a Monte Carlo manufacturing-yield estimate under 10%
parameter variation with the current re-optimized per sample.

Run:  pytest benchmarks/bench_ablation_robustness.py --benchmark-only -s
"""

import pytest

from repro.core.deploy import greedy_deploy
from repro.core.sensitivity import (
    monte_carlo_feasibility,
    parameter_sensitivities,
)


def test_robustness_shape(alpha_problem, alpha_greedy):
    sensitivities = parameter_sensitivities(
        alpha_problem, alpha_greedy.tec_tiles
    )
    print()
    print("{:<26} {:>14} {:>14}".format(
        "parameter (+10%)", "peak shift C", "I_opt shift A"))
    for s in sensitivities:
        print("{:<26} {:>14.3f} {:>14.3f}".format(
            s.parameter, s.peak_shift_c, s.i_opt_shift_a))
    by_name = {s.parameter: s for s in sensitivities}
    assert by_name["seebeck"].peak_shift_c < 0.0
    assert by_name["electrical_resistance"].peak_shift_c > 0.0

    outcome = monte_carlo_feasibility(
        alpha_problem, alpha_greedy.tec_tiles,
        samples=40, coefficient_of_variation=0.10, seed=2010,
    )
    print()
    print("Monte Carlo ({} samples, 10% CV, current re-optimized):".format(
        outcome.samples))
    print("  yield:      {:.0%}".format(outcome.yield_fraction))
    print("  peak range: {:.2f} .. {:.2f} C (nominal {:.2f})".format(
        outcome.best_peak_c, outcome.worst_peak_c, outcome.nominal_peak_c))
    # the nominal design carries ~1 C of margin; most variation
    # samples stay feasible once the current re-adapts.
    assert outcome.yield_fraction >= 0.5
    assert outcome.worst_peak_c < alpha_problem.max_temperature_c + 3.0


@pytest.mark.benchmark(group="ablation-robustness")
def test_monte_carlo_cost(benchmark, alpha_problem, alpha_greedy):
    outcome = benchmark.pedantic(
        lambda: monte_carlo_feasibility(
            alpha_problem, alpha_greedy.tec_tiles, samples=10, seed=1
        ),
        rounds=3,
        iterations=1,
    )
    assert outcome.samples == 10
