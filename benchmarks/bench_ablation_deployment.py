"""Ablation: deployment strategies beyond Figure 5's batch greedy.

Compares four ways to choose the TEC tile set on the Alpha benchmark —
Figure 5's batch greedy, one-device-at-a-time incremental greedy, a
static power-density threshold, and Full-Cover — printing devices /
I_opt / peak / P_TEC / runtime per strategy.  Findings: the
thermal-feedback strategies reach the limit while the static ones do
not, and the batch greedy beats the incremental hottest-tile chaser
(covering whole offender sets at once avoids the local plateaus the
one-at-a-time strategy wanders through).

Run:  pytest benchmarks/bench_ablation_deployment.py --benchmark-only -s
"""

import pytest

from repro.core.strategies import compare_strategies, incremental_deploy


def test_strategy_comparison_shape(alpha_problem):
    outcomes = compare_strategies(alpha_problem, density_thresholds=(100.0, 150.0))
    print()
    print("{:<22} {:>6} {:>8} {:>9} {:>9} {:>10} {:>9}".format(
        "strategy", "#TECs", "I_opt A", "peak C", "P_TEC W", "runtime s", "feasible"))
    for outcome in outcomes.values():
        print("{:<22} {:>6} {:>8.2f} {:>9.2f} {:>9.2f} {:>10.3f} {:>9}".format(
            outcome.strategy, outcome.num_tecs, outcome.current_a,
            outcome.peak_c, outcome.tec_power_w, outcome.runtime_s,
            "yes" if outcome.feasible else "NO"))

    greedy = outcomes["greedy (Fig. 5)"]
    incremental = outcomes["incremental"]
    cover = outcomes["full-cover"]
    assert greedy.feasible and incremental.feasible
    # batch greedy dominates on Alpha: fewer devices AND lower peak.
    assert greedy.num_tecs <= incremental.num_tecs
    assert greedy.peak_c <= incremental.peak_c + 1e-6
    # full cover cannot reach the limit on Alpha (the paper's result).
    assert not cover.feasible
    assert cover.peak_c > greedy.peak_c
    # the static thresholds (no thermal feedback) miss feasibility.
    for label, outcome in outcomes.items():
        if label.startswith("density"):
            assert not outcome.feasible


@pytest.mark.benchmark(group="ablation-deployment")
def test_incremental_deploy_cost(benchmark, alpha_problem):
    outcome = benchmark.pedantic(
        lambda: incremental_deploy(alpha_problem), rounds=3, iterations=1
    )
    assert outcome.feasible
