"""Hypothesis property tests on cross-cutting model invariants.

Each property is a physical or mathematical law that must hold for
*any* admissible input, not just the benchmarks: energy conservation,
superposition of the passive network, reciprocity of the influence
matrix, monotonicity of the runaway current in the deployment, and
the Theorem 1 dichotomy on real package matrices.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.linalg.runaway import runaway_current_eigen
from repro.linalg.spd import cholesky_is_spd
from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel

pytestmark = pytest.mark.integration

_GRID = TileGrid(4, 4)

_power_maps = st.lists(
    st.floats(min_value=0.0, max_value=0.8),
    min_size=16,
    max_size=16,
).map(np.array)

_tec_subsets = st.sets(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=6
)

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPassiveNetworkProperties:
    @given(_power_maps)
    @_settings
    def test_energy_conservation(self, power):
        """Heat out through convection equals heat in, always."""
        model = PackageThermalModel(_GRID, power)
        state = model.solve(0.0)
        flux = sum(
            g * (state.theta_k[node] - 318.15)
            for node, g in model.network.ground_items()
        )
        assert abs(flux - float(np.sum(power))) < 1e-8 * max(1.0, np.sum(power))

    @given(_power_maps, _power_maps)
    @_settings
    def test_superposition(self, pa, pb):
        """theta(a + b) - amb == (theta(a) - amb) + (theta(b) - amb)."""
        amb = PackageThermalModel(_GRID, np.zeros(16)).solve(0.0).silicon_k
        ta = PackageThermalModel(_GRID, pa).solve(0.0).silicon_k
        tb = PackageThermalModel(_GRID, pb).solve(0.0).silicon_k
        tab = PackageThermalModel(_GRID, pa + pb).solve(0.0).silicon_k
        assert np.allclose(tab - amb, (ta - amb) + (tb - amb), atol=1e-8)

    @given(_power_maps, st.integers(min_value=0, max_value=15))
    @_settings
    def test_monotonicity_in_power(self, power, tile):
        """Adding power anywhere can cool nothing (inverse-positivity
        of G seen thermally)."""
        base = PackageThermalModel(_GRID, power).solve(0.0).silicon_k
        boosted_power = power.copy()
        boosted_power[tile] += 0.5
        boosted = PackageThermalModel(_GRID, boosted_power).solve(0.0).silicon_k
        assert np.all(boosted >= base - 1e-10)

    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    @_settings
    def test_reciprocity(self, tile_a, tile_b):
        """h_ab == h_ba: power at a heats b exactly as power at b
        heats a (symmetry of G^-1)."""
        model = PackageThermalModel(_GRID, np.zeros(16))
        node_a = model.silicon_nodes[tile_a]
        node_b = model.silicon_nodes[tile_b]
        unit_a = np.zeros(model.num_nodes)
        unit_a[node_a] = 1.0
        unit_b = np.zeros(model.num_nodes)
        unit_b[node_b] = 1.0
        h_ab = model.solver.solve_rhs(0.0, unit_a)[node_b]
        h_ba = model.solver.solve_rhs(0.0, unit_b)[node_a]
        assert abs(h_ab - h_ba) < 1e-12 * max(1.0, abs(h_ab))


class TestDeployedModelProperties:
    @given(_power_maps, _tec_subsets)
    @_settings
    def test_theorem1_dichotomy_on_package_matrices(self, power, tiles):
        """For any deployment, G - iD flips definiteness exactly at
        the computed lambda_m."""
        model = PackageThermalModel(_GRID, power, tec_tiles=tiles)
        g, d_diag, _, _ = model.matrices()
        lam = runaway_current_eigen(g, d_diag).value
        assert lam > 0.0
        dense = g.toarray()
        assert cholesky_is_spd(dense - 0.98 * lam * np.diag(d_diag))
        assert not cholesky_is_spd(dense - 1.02 * lam * np.diag(d_diag))

    @given(_power_maps, _tec_subsets, st.integers(min_value=0, max_value=15))
    @_settings
    def test_runaway_non_increasing_in_deployment(self, power, tiles, extra):
        """Adding one more TEC can only lower (or keep) the runaway
        current: the variational minimum runs over a larger feasible
        set once D gains support."""
        model = PackageThermalModel(_GRID, power, tec_tiles=tiles)
        bigger = PackageThermalModel(
            _GRID, power, tec_tiles=set(tiles) | {extra}
        )
        lam_small = model.runaway_current().value
        lam_big = bigger.runaway_current().value
        assert lam_big <= lam_small * (1.0 + 1e-9)

    @given(_power_maps, _tec_subsets)
    @_settings
    def test_influence_nonnegative_below_runaway(self, power, tiles):
        """Lemma 3 on deployed packages: H(i) >= 0 entrywise for
        i inside [0, lambda_m)."""
        model = PackageThermalModel(_GRID, power, tec_tiles=tiles)
        lam = model.runaway_current().value
        current = 0.5 * lam
        probe = np.zeros(model.num_nodes)
        probe[model.silicon_nodes[0]] = 1.0
        column = model.solver.solve_rhs(current, probe)
        assert np.all(column >= -1e-10)

    @given(_power_maps, _tec_subsets)
    @_settings
    def test_tec_power_balance(self, power, tiles):
        """Convected heat equals chip power plus TEC input power at
        any deployment and moderate current."""
        model = PackageThermalModel(_GRID, power, tec_tiles=tiles)
        current = 0.02 * model.runaway_current().value
        state = model.solve(current)
        flux = sum(
            g * (state.theta_k[node] - 318.15)
            for node, g in model.network.ground_items()
        )
        expected = float(np.sum(power)) + state.tec_input_power_w()
        assert abs(flux - expected) < 1e-7 * max(1.0, abs(expected))
