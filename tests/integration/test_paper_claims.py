"""End-to-end checks of the paper's headline claims (Section VI).

These are the acceptance criteria from DESIGN.md: the *shape* of every
published result — who wins, by roughly what factor, where the
crossovers fall — must hold on the reproduced system.
"""

import math

import numpy as np
import pytest

from repro.core.baselines import full_cover
from repro.core.deploy import greedy_deploy
from repro.experiments.benchmarks import BENCHMARKS, load_benchmark

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def all_rows():
    """Greedy + full-cover on every Table I benchmark."""
    rows = {}
    for name, spec in BENCHMARKS.items():
        problem = spec.problem()
        rows[name] = (spec, greedy_deploy(problem), full_cover(problem))
    return rows


class TestThetaPeakColumn:
    def test_every_benchmark_matches_published_peak(self, all_rows):
        for name, (spec, greedy, _) in all_rows.items():
            assert greedy.no_tec_peak_c == pytest.approx(
                spec.paper_theta_peak_c, abs=0.1
            ), name

    def test_peaks_span_paper_range(self, all_rows):
        peaks = [g.no_tec_peak_c for _, g, _ in all_rows.values()]
        assert min(peaks) == pytest.approx(89.4, abs=0.2)
        assert max(peaks) == pytest.approx(95.3, abs=0.2)


class TestFeasibilityPattern:
    def test_all_feasible_at_their_limits(self, all_rows):
        for name, (_, greedy, _) in all_rows.items():
            assert greedy.feasible, name

    def test_hc06_hc09_infeasible_at_85(self):
        """The paper: HC06/HC09 exceed the TECs' capability at 85 C."""
        for name in ("hc06", "hc09"):
            problem = load_benchmark(name).with_limit(85.0)
            result = greedy_deploy(problem)
            assert not result.feasible, name

    def test_limits_match_table(self, all_rows):
        assert all_rows["hc06"][0].limit_c == 89.0
        assert all_rows["hc09"][0].limit_c == 88.0


class TestDeploymentShape:
    def test_tec_counts_order_of_paper(self, all_rows):
        """Paper: 11-18 devices; tolerance band 5-25."""
        for name, (_, greedy, _) in all_rows.items():
            assert 5 <= greedy.num_tecs <= 25, (name, greedy.num_tecs)

    def test_deployment_is_sparse(self, all_rows):
        for name, (_, greedy, _) in all_rows.items():
            assert greedy.num_tecs <= 0.2 * 144, name

    def test_optimal_currents_single_digit_amps(self, all_rows):
        """Paper: 5.05-10.42 A."""
        for name, (_, greedy, _) in all_rows.items():
            assert 2.0 <= greedy.current <= 12.0, (name, greedy.current)

    def test_tec_power_order_watts(self, all_rows):
        """Paper: 0.60-3.02 W, 'reasonably small (around 2 W)'."""
        for name, (_, greedy, _) in all_rows.items():
            assert 0.1 <= greedy.tec_power_w <= 4.0, (name, greedy.tec_power_w)


class TestCoolingSwing:
    def test_swing_reaches_several_degrees(self, all_rows):
        """Paper: 'reduces the temperatures of the hot spots by as much
        as 7.5 C'."""
        swings = [g.cooling_swing_c for _, g, _ in all_rows.values()]
        assert max(swings) >= 6.5
        assert all(s > 0 for s in swings)

    def test_swing_consistent_with_chowdhury_range(self, all_rows):
        """Section VI.B cites 5.4-9.6 C max on-demand swing from [1];
        the reproduced swings stay within a compatible envelope."""
        swings = [g.cooling_swing_c for _, g, _ in all_rows.values()]
        assert max(swings) <= 12.0


class TestSwingLossColumn:
    def test_full_cover_loses_on_every_benchmark(self, all_rows):
        """The over-deployment phenomenon: SwingLoss > 0 everywhere."""
        for name, (_, greedy, fc) in all_rows.items():
            assert fc.min_peak_c > greedy.peak_c, name

    def test_average_loss_a_few_degrees(self, all_rows):
        """Paper average 4.2 C; reproduction lands in the same regime."""
        losses = [fc.min_peak_c - g.peak_c for _, g, fc in all_rows.values()]
        assert 1.5 <= float(np.mean(losses)) <= 6.0

    def test_full_cover_misses_85_on_alpha(self, all_rows):
        _, _, fc = all_rows["alpha"]
        assert fc.min_peak_c > 85.0


class TestRuntimeClaim:
    def test_each_benchmark_well_under_three_minutes(self, all_rows):
        """Paper: < 3 min per benchmark (C++/2.8 GHz Xeon); the Python
        reproduction is far faster on the same instance sizes."""
        for name, (_, greedy, fc) in all_rows.items():
            assert greedy.runtime_s + fc.runtime_s < 180.0, name


class TestRunawayExists:
    def test_every_deployment_has_finite_runaway(self, all_rows):
        for name, (_, greedy, _) in all_rows.items():
            lam = greedy.model.runaway_current().value
            assert 0.0 < lam < math.inf, name
            assert greedy.current < lam, name
