"""Cross-subsystem consistency checks.

Independent computations of the same physical quantity must agree:
compact vs transient vs reference, eigen vs binary-search runaway,
Equation (10) vs the direct solve, device physics vs network fluxes.
"""

import numpy as np
import pytest

from repro.core.convexity import eta_zeta
from repro.core.current import minimize_peak_temperature
from repro.tec.device import cold_side_flux, hot_side_flux
from repro.thermal.transient import TransientSimulator

pytestmark = pytest.mark.integration


class TestSteadyVsTransient:
    def test_transient_settles_on_steady_state_everywhere(self, small_deployed):
        """Not just the peak: the full temperature field must agree."""
        current = 4.0
        sim = TransientSimulator(small_deployed, current=current, dt=1e5)
        sim.step()  # one huge backward-Euler step ~ steady state
        steady = small_deployed.solve(current).theta_k
        assert np.allclose(sim.theta_k, steady, atol=1e-3)


class TestDeviceFluxVsNetwork:
    def test_network_fluxes_reproduce_equations_1_and_2(self, small_deployed):
        """The heat entering/leaving the stamped TEC nodes must equal
        the device equations evaluated at the solved face temperatures."""
        current = 5.0
        state = small_deployed.solve(current)
        device = small_deployed.device
        theta = state.theta_k
        net = small_deployed.network
        conductances = dict(net.conductance_items())

        for stamp in small_deployed.stamps:
            cold, hot = stamp.cold_node, stamp.hot_node
            tc, th = theta[cold], theta[hot]
            # Net heat the cold node absorbs from the package through
            # its contact conductance:
            silicon = [
                (pair, g)
                for pair, g in conductances.items()
                if cold in pair and hot not in pair
            ]
            assert len(silicon) == 1
            (pair, g_c) = silicon[0]
            other = pair[0] if pair[1] == cold else pair[1]
            inflow = g_c * (theta[other] - tc)
            # Equation (1): q_c with the *network* kappa flow direction.
            q_c = (
                device.seebeck * current * tc
                - 0.5 * device.electrical_resistance * current**2
                - device.thermal_conductance * (th - tc)
            )
            assert inflow == pytest.approx(q_c, rel=1e-9, abs=1e-12)

    def test_equation3_balance_per_device(self, small_deployed):
        current = 5.0
        state = small_deployed.solve(current)
        device = small_deployed.device
        cold, hot = state.tec_face_temperatures_k()
        for tc, th in zip(cold, hot):
            qc = cold_side_flux(device, current, tc, th)
            qh = hot_side_flux(device, current, tc, th)
            assert qh - qc == pytest.approx(
                device.electrical_resistance * current**2
                + device.seebeck * current * (th - tc)
            )


class TestDecompositionVsDirectSolve:
    def test_equation_10_linearity_in_tile_power(self, small_deployed):
        """zeta is the power-to-temperature influence: doubling a
        tile's power adds exactly h_k,l * p_l to every temperature."""
        current = 2.0
        _, zeta = eta_zeta(small_deployed, current)
        state = small_deployed.solve(current)

        boosted = small_deployed.with_tec_tiles(small_deployed.tec_tiles)
        # construct a model with tile 0 power doubled
        power = small_deployed.power_map.copy()
        extra = power[0]
        power[0] *= 2.0
        from repro.thermal.model import PackageThermalModel

        boosted = PackageThermalModel(
            small_deployed.grid,
            power,
            stack=small_deployed.stack,
            tec_tiles=small_deployed.tec_tiles,
            device=small_deployed.device,
        )
        boosted_state = boosted.solve(current)
        node = small_deployed.silicon_nodes[0]
        unit = np.zeros(small_deployed.num_nodes)
        unit[node] = 1.0
        h_col = small_deployed.solver.solve_rhs(current, unit)
        expected_delta = extra * h_col[small_deployed.silicon_nodes]
        actual_delta = boosted_state.silicon_k - state.silicon_k
        assert np.allclose(actual_delta, expected_delta, atol=1e-9)


class TestOptimizerAgainstBruteForce:
    def test_golden_section_matches_fine_grid_on_alpha(self, alpha_greedy):
        model = alpha_greedy.model
        optimum = minimize_peak_temperature(model, tolerance=1e-5)
        grid = np.linspace(
            max(optimum.current - 1.0, 0.0), optimum.current + 1.0, 201
        )
        brute = min(model.solve(i).peak_silicon_c for i in grid)
        assert optimum.peak_c <= brute + 5e-4
