"""Supply-current controllers."""

import pytest

from repro.control.controllers import (
    BangBangController,
    ConstantCurrentController,
    PiController,
)


class TestConstant:
    def test_always_same(self):
        controller = ConstantCurrentController(5.5)
        assert controller.update(200.0, 0.1) == 5.5
        assert controller.update(20.0, 0.1) == 5.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantCurrentController(-1.0)


class TestBangBang:
    def test_engages_above_threshold(self):
        controller = BangBangController(85.0, hysteresis_c=2.0, i_on=6.0)
        assert controller.update(84.0, 0.1) == 0.0
        assert controller.update(85.5, 0.1) == 6.0
        assert controller.engaged

    def test_hysteresis_band_holds(self):
        controller = BangBangController(85.0, hysteresis_c=2.0, i_on=6.0)
        controller.update(86.0, 0.1)  # engage
        # inside the band: stays on
        assert controller.update(84.0, 0.1) == 6.0
        # below band: releases
        assert controller.update(82.9, 0.1) == 0.0
        assert not controller.engaged

    def test_reset(self):
        controller = BangBangController(85.0)
        controller.update(90.0, 0.1)
        controller.reset()
        assert not controller.engaged

    def test_i_off_validation(self):
        with pytest.raises(ValueError):
            BangBangController(85.0, i_on=2.0, i_off=3.0)

    def test_nonzero_i_off(self):
        controller = BangBangController(85.0, i_on=6.0, i_off=1.0)
        assert controller.update(80.0, 0.1) == 1.0


class TestPi:
    def test_zero_at_setpoint_from_reset(self):
        controller = PiController(85.0, kp=1.0, ki=0.1)
        assert controller.update(85.0, 0.1) == 0.0

    def test_proportional_response(self):
        controller = PiController(85.0, kp=2.0, ki=0.0)
        assert controller.update(87.0, 0.1) == pytest.approx(4.0)

    def test_integral_accumulates(self):
        controller = PiController(85.0, kp=0.0, ki=1.0)
        first = controller.update(86.0, 1.0)
        second = controller.update(86.0, 1.0)
        assert second > first > 0.0

    def test_clamped_to_i_max(self):
        controller = PiController(85.0, kp=100.0, i_max=8.0)
        assert controller.update(200.0, 0.1) == 8.0

    def test_never_negative(self):
        controller = PiController(85.0, kp=1.0)
        assert controller.update(20.0, 0.1) == 0.0

    def test_anti_windup_recovers_quickly(self):
        """After a long saturated-hot phase the integrator must not
        have wound up: one cool reading drops the command."""
        controller = PiController(85.0, kp=1.0, ki=1.0, i_max=5.0)
        for _ in range(100):
            controller.update(95.0, 1.0)  # deeply saturated
        cooled = controller.update(84.0, 1.0)
        assert cooled < 5.0

    def test_low_side_anti_windup(self):
        controller = PiController(85.0, kp=1.0, ki=1.0, i_max=5.0)
        for _ in range(100):
            controller.update(50.0, 1.0)  # saturated at zero
        heated = controller.update(86.5, 1.0)
        assert heated > 0.0

    def test_reset_clears_integrator(self):
        controller = PiController(85.0, kp=0.0, ki=1.0)
        controller.update(90.0, 1.0)
        controller.reset()
        assert controller.update(85.0, 1.0) == 0.0

    def test_dt_validated(self):
        with pytest.raises(ValueError):
            PiController(85.0).update(86.0, 0.0)
