"""Property tests for the control stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.controllers import BangBangController, PiController
from repro.control.sensors import ThermalSensor

_settings = settings(max_examples=40, deadline=None)


class TestPiProperties:
    @given(
        st.floats(min_value=-50.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.5, max_value=20.0),
    )
    @_settings
    def test_output_always_in_range(self, error, kp, ki, i_max):
        controller = PiController(85.0, kp=kp, ki=ki, i_max=i_max)
        for _ in range(5):
            command = controller.update(85.0 + error, 0.5)
            assert 0.0 <= command <= i_max

    @given(st.floats(min_value=0.1, max_value=10.0))
    @_settings
    def test_proportional_monotone_in_error(self, kp):
        """At zero integrator state, a hotter reading never commands
        less current."""
        low = PiController(85.0, kp=kp, ki=0.0, i_max=100.0).update(86.0, 0.1)
        high = PiController(85.0, kp=kp, ki=0.0, i_max=100.0).update(90.0, 0.1)
        assert high >= low

    @given(st.lists(st.floats(min_value=60.0, max_value=110.0),
                    min_size=1, max_size=30))
    @_settings
    def test_integrator_bounded_under_any_reading_sequence(self, readings):
        """Anti-windup keeps the internal integral from exploding no
        matter what the sensor reports."""
        controller = PiController(85.0, kp=1.0, ki=1.0, i_max=10.0)
        for reading in readings:
            controller.update(reading, 1.0)
        # the integral's contribution stays within the actuator range
        # plus one step's proportional headroom.
        assert abs(controller._integral) <= (10.0 / 1.0) + 50.0


class TestBangBangProperties:
    @given(st.lists(st.floats(min_value=60.0, max_value=110.0),
                    min_size=1, max_size=40))
    @_settings
    def test_output_is_always_one_of_two_levels(self, readings):
        controller = BangBangController(85.0, hysteresis_c=2.0,
                                        i_on=6.0, i_off=1.0)
        for reading in readings:
            assert controller.update(reading, 0.5) in (1.0, 6.0)

    @given(st.floats(min_value=0.0, max_value=10.0))
    @_settings
    def test_no_release_inside_hysteresis_band(self, hysteresis):
        controller = BangBangController(85.0, hysteresis_c=hysteresis, i_on=5.0)
        controller.update(86.0, 0.5)  # engage
        inside = 85.0 - 0.5 * hysteresis
        assert controller.update(inside, 0.5) == 5.0


class TestSensorProperties:
    @given(
        st.floats(min_value=0.01, max_value=2.0),
        st.floats(min_value=20.0, max_value=120.0),
        st.integers(min_value=0, max_value=10**6),
    )
    @_settings
    def test_quantized_readings_land_on_grid(self, quantum, truth, seed):
        sensor = ThermalSensor(0, noise_std_c=0.3, quantization_c=quantum,
                               seed=seed)
        reading = sensor.read([truth])
        steps = reading / quantum
        assert abs(steps - round(steps)) < 1e-6

    @given(
        st.floats(min_value=20.0, max_value=120.0),
        st.integers(min_value=0, max_value=10**6),
    )
    @_settings
    def test_noiseless_sensor_error_bounded_by_half_quantum(self, truth, seed):
        sensor = ThermalSensor(0, noise_std_c=0.0, quantization_c=0.5, seed=seed)
        assert abs(sensor.read([truth]) - truth) <= 0.25 + 1e-9
