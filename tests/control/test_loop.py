"""The closed-loop DTM simulator."""

import numpy as np
import pytest

from repro.control.controllers import (
    BangBangController,
    ConstantCurrentController,
    PiController,
)
from repro.control.loop import ClosedLoopSimulator
from repro.control.sensors import SensorArray


@pytest.fixture(scope="module")
def sensors(request):
    deployed = request.getfixturevalue("small_deployed")
    tiles = set(deployed.tec_tiles) | {deployed.solve(0.0).peak_tile}
    return SensorArray(tiles, noise_std_c=0.0, quantization_c=0.0, seed=0)


class TestConstruction:
    def test_requires_deployment(self, small_model, sensors):
        with pytest.raises(ValueError, match="deployed"):
            ClosedLoopSimulator(
                small_model, ConstantCurrentController(0.0), sensors
            )

    def test_parameter_validation(self, small_deployed, sensors):
        with pytest.raises(ValueError):
            ClosedLoopSimulator(
                small_deployed, ConstantCurrentController(0.0), sensors, dt=0.0
            )
        with pytest.raises(ValueError):
            ClosedLoopSimulator(
                small_deployed, ConstantCurrentController(0.0), sensors,
                safety_fraction=1.5,
            )


class TestOpenLoopEquivalence:
    def test_constant_controller_matches_transient(self, small_deployed, sensors):
        """A constant-current closed loop is exactly the open-loop
        transient at that (quantized) current."""
        from repro.thermal.transient import TransientSimulator

        current = 4.0
        loop = ClosedLoopSimulator(
            small_deployed, ConstantCurrentController(current), sensors,
            dt=0.05, control_period=0.05,
        )
        result = loop.run(40)
        reference = TransientSimulator(small_deployed, current=current, dt=0.05)
        expected = reference.run(40)
        assert np.allclose(result.true_peak_c, expected, atol=1e-9)
        assert result.factorizations == 1

    def test_zero_current_heats_to_passive_steady(self, small_deployed, sensors):
        loop = ClosedLoopSimulator(
            small_deployed, ConstantCurrentController(0.0), sensors, dt=1.0
        )
        result = loop.run(400)
        steady = small_deployed.solve(0.0).peak_silicon_c
        assert result.true_peak_c[-1] == pytest.approx(steady, abs=0.1)


class TestSafetyCeiling:
    def test_commands_clamped_below_runaway(self, small_deployed, sensors):
        runaway = small_deployed.runaway_current().value
        loop = ClosedLoopSimulator(
            small_deployed,
            ConstantCurrentController(10.0 * runaway),
            sensors,
            safety_fraction=0.5,
        )
        result = loop.run(5)
        assert np.all(result.current_a <= 0.5 * runaway + 1e-9)
        assert np.all(np.isfinite(result.true_peak_c))


class TestBangBangLoop:
    @pytest.fixture(scope="class")
    def outcome(self, request):
        deployed = request.getfixturevalue("small_deployed")
        tiles = set(deployed.tec_tiles) | {deployed.solve(0.0).peak_tile}
        sensors = SensorArray(tiles, noise_std_c=0.0, quantization_c=0.0)
        bare_peak = deployed.solve(0.0).peak_silicon_c
        controller = BangBangController(
            bare_peak - 3.0, hysteresis_c=0.5, i_on=5.0
        )
        loop = ClosedLoopSimulator(
            deployed, controller, sensors, dt=0.5, control_period=0.5
        )
        return loop.run(600), bare_peak

    def test_regulates_between_on_and_off_levels(self, outcome):
        """The TEC responds faster than the 0.5 s control period, so
        the loop chatters between the on/off quasi-steady peaks; the
        contract is that it never exceeds the passive steady state and
        spends substantial time well below the threshold."""
        result, bare_peak = outcome
        threshold = bare_peak - 3.0
        settled = result.true_peak_c[200:]
        assert np.max(settled) < bare_peak + 0.5
        assert np.min(settled) < threshold - 1.0
        duty = float(np.mean(result.current_a[200:] > 0.0))
        assert 0.1 < duty < 0.9

    def test_controller_actually_switches(self, outcome):
        result, _ = outcome
        assert set(np.unique(result.current_a)) == {0.0, 5.0}

    def test_two_factorizations_only(self, outcome):
        result, _ = outcome
        assert result.factorizations == 2

    def test_energy_accounted(self, outcome):
        result, _ = outcome
        assert result.tec_energy_j > 0.0

    def test_time_above_helper(self, outcome):
        result, bare_peak = outcome
        assert 0.0 <= result.time_above(bare_peak - 3.0) <= 1.0
        assert result.time_above(-100.0) == 1.0


class TestPiLoop:
    def test_tracks_setpoint(self, small_deployed, sensors):
        bare_peak = small_deployed.solve(0.0).peak_silicon_c
        optimum_peak = small_deployed.solve(4.0).peak_silicon_c
        setpoint = 0.5 * (bare_peak + optimum_peak)  # reachable target
        controller = PiController(setpoint, kp=0.5, ki=0.3, i_max=8.0)
        loop = ClosedLoopSimulator(
            small_deployed, controller, sensors, dt=0.5, control_period=0.5
        )
        result = loop.run(1000)
        settled = result.true_peak_c[-200:]
        assert float(np.mean(settled)) == pytest.approx(setpoint, abs=0.2)

    def test_quantized_current_levels(self, small_deployed, sensors):
        controller = PiController(60.0, kp=1.0, ki=0.1, i_max=6.0)
        loop = ClosedLoopSimulator(
            small_deployed, controller, sensors,
            dt=0.5, control_period=1.0, current_quantum=0.25,
        )
        result = loop.run(100)
        levels = np.unique(result.current_a)
        assert np.allclose(levels / 0.25, np.round(levels / 0.25))
        assert result.factorizations == len(levels)


class TestLruBound:
    def _fresh(self, small_grid, small_power):
        """Private model + sensors so cache counters start from zero."""
        from repro.thermal.model import PackageThermalModel

        model = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6, 9, 10)
        )
        tiles = set(model.tec_tiles) | {model.solve(0.0).peak_tile}
        sensors = SensorArray(
            tiles, noise_std_c=0.0, quantization_c=0.0, seed=0
        )
        return model, sensors

    def _run(self, small_grid, small_power, lu_cache_size):
        model, sensors = self._fresh(small_grid, small_power)
        setpoint = model.solve(0.0).peak_silicon_c - 0.4
        controller = PiController(setpoint, kp=1.0, ki=0.5, i_max=8.0)
        loop = ClosedLoopSimulator(
            model, controller, sensors,
            dt=0.05, control_period=0.05, current_quantum=0.01,
            lu_cache_size=lu_cache_size,
        )
        return loop.run(60, initial_state="steady")

    def test_bounded_cache_matches_uncapped(self, small_grid, small_power):
        """A tiny LRU evicts (and refactorizes) but never changes the
        trajectory: splu of the same matrix is deterministic, so the
        bounded run is bit-identical to the uncapped one."""
        uncapped = self._run(small_grid, small_power, lu_cache_size=64)
        bounded = self._run(small_grid, small_power, lu_cache_size=2)
        # The ramping PI sweep visits far more levels than two slots.
        assert bounded.factorizations >= 3
        assert bounded.evictions > 0
        assert uncapped.evictions == 0
        # factorizations counts distinct quantized levels, so the cache
        # bound must not change it.
        assert bounded.factorizations == uncapped.factorizations
        assert np.array_equal(bounded.current_a, uncapped.current_a)
        assert np.allclose(
            bounded.true_peak_c, uncapped.true_peak_c, atol=1e-9
        )

    def test_eviction_traffic_lands_in_solver_stats(
        self, small_grid, small_power
    ):
        bounded = self._run(small_grid, small_power, lu_cache_size=2)
        assert bounded.solver_stats["evictions"] == bounded.evictions
        assert (
            bounded.solver_stats["factorizations"] >= bounded.factorizations
        )


class TestPowerSchedule:
    def test_burst_engages_controller(self, small_deployed, sensors):
        bare_peak = small_deployed.solve(0.0).peak_silicon_c
        controller = BangBangController(bare_peak - 5.0, i_on=5.0)
        loop = ClosedLoopSimulator(
            small_deployed, controller, sensors, dt=0.5, control_period=0.5
        )
        low = 0.3 * small_deployed.power_map

        def schedule(step, _t):
            return None if step > 300 else low

        result = loop.run(500, power_schedule=schedule)
        # during the low phase the controller stays off...
        assert np.all(result.current_a[:100] == 0.0)
        # ...and the full-power phase engages it.
        assert np.any(result.current_a[320:] > 0.0)
