"""Thermal sensor models."""

import numpy as np
import pytest

from repro.control.sensors import SensorArray, ThermalSensor


class TestThermalSensor:
    def test_noiseless_unquantized_is_exact(self):
        sensor = ThermalSensor(2, noise_std_c=0.0, quantization_c=0.0)
        assert sensor.read([10.0, 20.0, 30.0]) == 30.0

    def test_quantization_rounds_to_step(self):
        sensor = ThermalSensor(0, noise_std_c=0.0, quantization_c=0.5)
        assert sensor.read([85.3]) == pytest.approx(85.5)
        assert sensor.read([85.2]) == pytest.approx(85.0)

    def test_noise_statistics(self):
        sensor = ThermalSensor(0, noise_std_c=1.0, quantization_c=0.0, seed=1)
        reads = np.array([sensor.read([50.0]) for _ in range(4000)])
        assert reads.mean() == pytest.approx(50.0, abs=0.1)
        assert reads.std() == pytest.approx(1.0, abs=0.1)

    def test_deterministic_stream(self):
        a = ThermalSensor(0, seed=7)
        b = ThermalSensor(0, seed=7)
        assert [a.read([60.0]) for _ in range(5)] == [
            b.read([60.0]) for _ in range(5)
        ]

    def test_tile_bounds_checked(self):
        sensor = ThermalSensor(5, noise_std_c=0.0)
        with pytest.raises(IndexError):
            sensor.read([1.0, 2.0])

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            ThermalSensor(0, noise_std_c=-1.0)


class TestSensorArray:
    def test_requires_tiles(self):
        with pytest.raises(ValueError):
            SensorArray([])

    def test_tiles_deduplicated_sorted(self):
        array = SensorArray([3, 1, 3])
        assert array.tiles == [1, 3]

    def test_read_max_tracks_hottest_instrumented_tile(self):
        array = SensorArray([0, 2], noise_std_c=0.0, quantization_c=0.0)
        assert array.read_max([10.0, 99.0, 30.0]) == 30.0  # tile 1 blind

    def test_read_all_ordering(self):
        array = SensorArray([2, 0], noise_std_c=0.0, quantization_c=0.0)
        assert np.array_equal(array.read_all([5.0, 6.0, 7.0]), [5.0, 7.0])

    def test_for_deployment_instruments_covered_and_peak(self, alpha_greedy):
        array = SensorArray.for_deployment(alpha_greedy, noise_std_c=0.0)
        covered = set(alpha_greedy.tec_tiles)
        peak = alpha_greedy.model.solve(0.0).peak_tile
        assert covered | {peak} == set(array.tiles)

    def test_independent_sensor_streams(self):
        array = SensorArray([0, 1], noise_std_c=1.0, quantization_c=0.0, seed=3)
        reads = array.read_all([50.0, 50.0])
        assert reads[0] != reads[1]
