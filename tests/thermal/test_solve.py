"""Steady-state solver: correctness, caching, backends, singular handling."""

import numpy as np
import pytest

from repro.thermal.assembly import assemble
from repro.thermal.network import NodeRole, ThermalNetwork
from repro.thermal.solve import (
    AUTO_SUPPORT_FLOOR,
    SingularSystemError,
    SteadyStateSolver,
    select_backend,
)
from repro.utils import celsius_to_kelvin


@pytest.fixture()
def tec_system():
    net = ThermalNetwork()
    sil = net.add_node("sil", NodeRole.SILICON)
    snk = net.add_node("snk", NodeRole.SINK)
    cold = net.add_node("cold", NodeRole.TEC_COLD)
    hot = net.add_node("hot", NodeRole.TEC_HOT)
    net.add_conductance(sil, cold, 0.3)
    net.add_conductance(cold, hot, 0.02)
    net.add_conductance(hot, snk, 0.3)
    net.add_conductance(sil, snk, 0.01)
    net.add_ground_conductance(snk, 1.0)
    net.add_source(sil, 0.5)
    net.add_joule(cold, 1.25e-3)
    net.add_joule(hot, 1.25e-3)
    net.set_peltier(hot, +2e-4)
    net.set_peltier(cold, -2e-4)
    return assemble(net, 45.0)


class TestSolve:
    def test_zero_current_matches_dense_solve(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        theta = solver.solve(0.0)
        expected = np.linalg.solve(tec_system.g_matrix.toarray(), tec_system.p_base)
        assert np.allclose(theta, expected)

    def test_all_temperatures_above_ambient_without_cooling(self, tec_system):
        theta = SteadyStateSolver(tec_system).solve(0.0)
        assert np.all(theta >= celsius_to_kelvin(45.0) - 1e-9)

    def test_current_changes_solution(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        assert not np.allclose(solver.solve(0.0), solver.solve(5.0))

    def test_cache_reuses_factorization(self, tec_system):
        solver = SteadyStateSolver(tec_system, cache_size=2)
        solver.solve(1.0)
        lu_first = solver._lu_cache[1.0]
        solver.solve(1.0)
        assert solver._lu_cache[1.0] is lu_first

    def test_cache_eviction(self, tec_system):
        solver = SteadyStateSolver(tec_system, cache_size=2)
        solver.solve(1.0)
        solver.solve(2.0)
        solver.solve(3.0)
        assert 1.0 not in solver._lu_cache
        assert {2.0, 3.0} <= set(solver._lu_cache)

    def test_cache_size_validation(self, tec_system):
        with pytest.raises(ValueError):
            SteadyStateSolver(tec_system, cache_size=0)

    def test_check_definite_raises_beyond_runaway(self, tec_system):
        from repro.linalg.runaway import runaway_current

        solver = SteadyStateSolver(tec_system)
        lam = runaway_current(tec_system.g_matrix, tec_system.d_diagonal).value
        with pytest.raises(SingularSystemError):
            solver.solve(1.5 * lam, check_definite=True)

    def test_below_runaway_passes_check(self, tec_system):
        from repro.linalg.runaway import runaway_current

        solver = SteadyStateSolver(tec_system)
        lam = runaway_current(tec_system.g_matrix, tec_system.d_diagonal).value
        theta = solver.solve(0.5 * lam, check_definite=True)
        assert np.all(np.isfinite(theta))


class TestRhsAndInfluence:
    def test_solve_rhs_shape_check(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        with pytest.raises(ValueError, match="rhs"):
            solver.solve_rhs(0.0, np.zeros(3))

    def test_influence_rows_match_inverse(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        rows = solver.influence_rows(0.0, [0, 2])
        inverse = np.linalg.inv(tec_system.g_matrix.toarray())
        assert np.allclose(rows[0], inverse[0])
        assert np.allclose(rows[1], inverse[2])

    def test_influence_rows_nonnegative(self, tec_system):
        """Lemma 3 seen through the solver: H entries >= 0."""
        solver = SteadyStateSolver(tec_system)
        rows = solver.influence_rows(0.0, range(tec_system.num_nodes))
        assert np.all(rows >= -1e-12)


class TestLruPolicy:
    def test_recently_used_entry_survives_eviction(self, tec_system):
        """True LRU: re-touching a current refreshes its recency, so the
        alternating access pattern of the section search keeps hitting."""
        solver = SteadyStateSolver(tec_system, cache_size=2)
        rhs = tec_system.p_base
        solver.solve_rhs(1.0, rhs)
        solver.solve_rhs(2.0, rhs)
        solver.solve_rhs(1.0, rhs)  # refresh 1.0
        solver.solve_rhs(3.0, rhs)  # must evict 2.0, not 1.0
        assert 1.0 in solver._lu_cache
        assert 2.0 not in solver._lu_cache
        assert 3.0 in solver._lu_cache

    def test_eviction_counter(self, tec_system):
        solver = SteadyStateSolver(tec_system, cache_size=2)
        rhs = tec_system.p_base
        for current in (1.0, 2.0, 3.0, 4.0):
            solver.solve_rhs(current, rhs)
        assert solver.stats.evictions == 2

    def test_hit_and_miss_counters(self, tec_system):
        solver = SteadyStateSolver(tec_system, cache_size=4)
        rhs = tec_system.p_base
        solver.solve_rhs(1.0, rhs)
        solver.solve_rhs(2.0, rhs)
        solver.solve_rhs(1.0, rhs)
        assert solver.stats.cache_misses == 2
        assert solver.stats.cache_hits == 1
        assert solver.stats.cache_hit_rate == pytest.approx(1.0 / 3.0)

    def test_solution_cache_hit(self, tec_system):
        solver = SteadyStateSolver(tec_system, cache_size=4)
        first = solver.solve(2.0)
        second = solver.solve(2.0)
        assert solver.stats.solution_hits == 1
        assert np.array_equal(first, second)
        # Returned arrays are copies: mutating one must not poison the cache.
        second[:] = 0.0
        assert np.array_equal(solver.solve(2.0), first)


class TestReuseMode:
    def test_matches_direct_mode(self, tec_system):
        direct = SteadyStateSolver(tec_system, mode="direct")
        reuse = SteadyStateSolver(tec_system, mode="reuse")
        for current in (0.0, 0.5, 1.0, 2.0):
            assert np.allclose(
                reuse.solve(current), direct.solve(current), rtol=1e-10, atol=1e-10
            )

    def test_single_sparse_factorization(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="reuse")
        for current in (0.1, 0.7, 1.3, 2.1, 2.9):
            solver.solve(current)
        assert solver.stats.factorizations == 1
        assert solver.stats.cap_factorizations == 5

    def test_solve_rhs_matches_direct(self, tec_system):
        direct = SteadyStateSolver(tec_system, mode="direct")
        reuse = SteadyStateSolver(tec_system, mode="reuse")
        rhs = np.arange(1.0, tec_system.num_nodes + 1.0)
        assert np.allclose(
            reuse.solve_rhs(1.5, rhs), direct.solve_rhs(1.5, rhs),
            rtol=1e-10, atol=1e-10,
        )

    def test_influence_rows_match_direct(self, tec_system):
        direct = SteadyStateSolver(tec_system, mode="direct")
        reuse = SteadyStateSolver(tec_system, mode="reuse")
        nodes = range(tec_system.num_nodes)
        assert np.allclose(
            reuse.influence_rows(1.0, nodes), direct.influence_rows(1.0, nodes),
            rtol=1e-10, atol=1e-10,
        )

    def test_mode_validation(self, tec_system):
        with pytest.raises(ValueError, match="mode"):
            SteadyStateSolver(tec_system, mode="iterative")


class TestKrylovMode:
    def test_matches_direct_mode(self, tec_system):
        direct = SteadyStateSolver(tec_system, mode="direct")
        krylov = SteadyStateSolver(tec_system, mode="krylov")
        for current in (0.0, 0.5, 1.0, 2.0):
            assert np.allclose(
                krylov.solve(current), direct.solve(current),
                rtol=1e-8, atol=1e-8,
            )

    def test_solve_rhs_matches_direct(self, tec_system):
        direct = SteadyStateSolver(tec_system, mode="direct")
        krylov = SteadyStateSolver(tec_system, mode="krylov")
        rhs = np.column_stack([
            tec_system.p_base,
            np.arange(1.0, tec_system.num_nodes + 1.0),
        ])
        assert np.allclose(
            krylov.solve_rhs(1.5, rhs), direct.solve_rhs(1.5, rhs),
            rtol=1e-8, atol=1e-8,
        )

    def test_influence_rows_match_direct(self, tec_system):
        direct = SteadyStateSolver(tec_system, mode="direct")
        krylov = SteadyStateSolver(tec_system, mode="krylov")
        nodes = range(tec_system.num_nodes)
        assert np.allclose(
            krylov.influence_rows(1.0, nodes),
            direct.influence_rows(1.0, nodes),
            rtol=1e-8, atol=1e-8,
        )

    def test_iteration_counters(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="krylov")
        solver.solve(0.7)
        assert solver.stats.krylov_solves == 1
        assert solver.stats.krylov_iterations >= 1
        assert solver.stats.krylov_fallbacks == 0
        # a single base-G factorization backs the preconditioner
        assert solver.stats.factorizations == 1

    def test_zero_current_skips_iteration(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="krylov")
        solver.solve(0.0)
        assert solver.stats.krylov_solves == 0

    def test_fallback_on_exhausted_budget(self, tec_system):
        """An exhausted iteration budget falls back to the exact
        per-current LU — same answer, fallback counted."""
        direct = SteadyStateSolver(tec_system, mode="direct")
        starved = SteadyStateSolver(
            tec_system, mode="krylov", krylov_maxiter=1, krylov_restart=1
        )
        theta = starved.solve(2.0)
        assert starved.stats.krylov_fallbacks >= 1
        assert np.allclose(theta, direct.solve(2.0), rtol=1e-10, atol=1e-10)

    def test_bicgstab_matches_direct(self, tec_system):
        direct = SteadyStateSolver(tec_system, mode="direct")
        solver = SteadyStateSolver(
            tec_system, mode="krylov", krylov_method="bicgstab"
        )
        assert np.allclose(
            solver.solve(1.0), direct.solve(1.0), rtol=1e-8, atol=1e-8
        )

    def test_krylov_method_validation(self, tec_system):
        with pytest.raises(ValueError, match="krylov_method"):
            SteadyStateSolver(tec_system, mode="krylov", krylov_method="jacobi")


class TestAutoMode:
    def test_select_backend_small_support(self):
        assert select_backend(100, 10) == "reuse"

    def test_select_backend_dense_support(self):
        assert select_backend(10000, 2000) == "krylov"

    def test_select_backend_floor_boundary(self):
        # the floor dominates sqrt(n) on small systems
        assert select_backend(16, AUTO_SUPPORT_FLOOR) == "reuse"
        assert select_backend(16, AUTO_SUPPORT_FLOOR + 1) == "krylov"

    def test_auto_resolves_per_system(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="auto")
        # 4 nodes, support 2: well below the floor -> Woodbury reuse
        assert solver.effective_mode == "reuse"
        assert solver.mode == "auto"  # the request is preserved

    def test_auto_matches_direct(self, tec_system):
        direct = SteadyStateSolver(tec_system, mode="direct")
        auto = SteadyStateSolver(tec_system, mode="auto")
        for current in (0.0, 0.5, 1.0):
            assert np.allclose(
                auto.solve(current), direct.solve(current),
                rtol=1e-8, atol=1e-8,
            )

    def test_non_auto_effective_mode_is_identity(self, tec_system):
        for mode in ("direct", "reuse", "krylov"):
            assert SteadyStateSolver(tec_system, mode=mode).effective_mode == mode


class TestExactFloatCacheKey:
    """Pin the exact-float per-current cache key (see the solve.py
    module docstring): quantizing the key is a deliberate change."""

    def test_nearly_identical_currents_always_miss(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="direct")
        rhs = tec_system.p_base
        current = 1.0
        solver.solve_rhs(current, rhs)
        solver.solve_rhs(current * (1.0 + 1e-15), rhs)
        assert solver.stats.cache_misses == 2
        assert solver.stats.cache_hits == 0
        assert solver.stats.cache_hit_rate == 0.0

    def test_exact_current_hits(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="direct")
        rhs = tec_system.p_base
        solver.solve_rhs(1.0, rhs)
        solver.solve_rhs(1.0, rhs)
        assert solver.stats.cache_hits == 1
        assert solver.stats.cache_hit_rate == pytest.approx(0.5)

    def test_reuse_capacitance_cache_keys_exact_floats(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="reuse")
        rhs = tec_system.p_base
        solver.solve_rhs(1.0, rhs)
        solver.solve_rhs(np.nextafter(1.0, 2.0), rhs)
        assert solver.stats.cap_factorizations == 2
        assert solver.stats.cache_hits == 0


class TestSingularHandling:
    """SingularSystemError at/beyond the runaway current ``lambda_m``
    for the reuse and krylov backends (direct is covered above)."""

    @staticmethod
    def _runaway(tec_system):
        from repro.linalg.runaway import runaway_current

        return runaway_current(tec_system.g_matrix, tec_system.d_diagonal).value

    def test_reuse_capacitance_guard_at_runaway(self, tec_system):
        """The Woodbury capacitance ``I - i d Z`` is singular exactly at
        ``lambda_m``; the rcond guard must catch it instead of returning
        garbage temperatures."""
        solver = SteadyStateSolver(tec_system, mode="reuse")
        lam = self._runaway(tec_system)
        with pytest.raises(SingularSystemError, match="capacitance"):
            solver.solve(lam)

    def test_runaway_equals_capacitance_singularity(self, tec_system):
        """Cross-check: 1 / max eig of ``d Z`` is exactly ``lambda_m``,
        so the guard and Theorem 1 agree on where runaway happens."""
        solver = SteadyStateSolver(tec_system, mode="reuse")
        solver._base_factorization()
        solver._ensure_influence()
        eigs = np.linalg.eigvals(solver._d_support[:, None] * solver._z)
        real = eigs.real[np.abs(eigs.imag) < 1e-9 * np.abs(eigs).max()]
        i_sing = 1.0 / real.max()
        assert i_sing == pytest.approx(self._runaway(tec_system), rel=1e-9)

    def test_reuse_check_definite_beyond_runaway(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="reuse")
        with pytest.raises(SingularSystemError):
            solver.solve(1.5 * self._runaway(tec_system), check_definite=True)

    def test_krylov_check_definite_beyond_runaway(self, tec_system):
        solver = SteadyStateSolver(tec_system, mode="krylov")
        with pytest.raises(SingularSystemError):
            solver.solve(1.5 * self._runaway(tec_system), check_definite=True)

    def test_krylov_near_runaway_stays_accurate(self, tec_system):
        """Close to runaway the preconditioned spectrum degrades; the
        residual check must either converge or fall back — never return
        an inaccurate answer silently."""
        direct = SteadyStateSolver(tec_system, mode="direct")
        krylov = SteadyStateSolver(tec_system, mode="krylov")
        current = 0.999 * self._runaway(tec_system)
        assert np.allclose(
            krylov.solve(current), direct.solve(current), rtol=1e-6
        )


class TestBatchedRhs:
    def test_matrix_rhs_matches_column_solves(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        rhs = np.column_stack([
            tec_system.p_base,
            np.arange(float(tec_system.num_nodes)),
        ])
        batched = solver.solve_rhs(1.0, rhs)
        assert batched.shape == rhs.shape
        for j in range(rhs.shape[1]):
            assert np.allclose(batched[:, j], solver.solve_rhs(1.0, rhs[:, j]))

    def test_rhs_columns_counted(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        solver.solve_rhs(0.0, np.zeros((tec_system.num_nodes, 3)))
        assert solver.stats.rhs_columns == 3


class TestSolverStats:
    def test_diff_and_copy(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        before = solver.stats.copy()
        solver.solve(1.0)
        delta = solver.stats.diff(before)
        assert delta.solves == 1
        assert delta.factorizations == 1
        assert before.solves == 0  # the snapshot is independent

    def test_as_dict_round_trips(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        solver.solve(0.5)
        data = solver.stats.as_dict()
        assert data["solves"] == 1
        assert set(data) == {
            "factorizations", "cap_factorizations", "cap_refinements",
            "cap_refine_failures", "cache_hits",
            "cache_misses", "evictions", "solves", "rhs_columns",
            "solution_hits", "krylov_solves", "krylov_iterations",
            "krylov_fallbacks", "mg_hierarchies", "mg_solves",
            "mg_cycles", "mg_fallbacks",
            "factor_time_s", "solve_time_s",
            "full_builds", "incremental_builds", "assembly_time_s",
        }

    def test_summary_is_single_line(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        solver.solve(0.5)
        summary = solver.stats.summary()
        assert "\n" not in summary
        assert "1 LU" in summary


class TestCapRefinement:
    """Iterative refinement of Woodbury capacitance solves against the
    nearest cached factorization (clustered-current fast path)."""

    @staticmethod
    def _big_model():
        from repro.thermal.geometry import TileGrid
        from repro.thermal.model import PackageThermalModel

        grid = TileGrid(6, 6)
        power = np.full(grid.num_tiles, 0.12)
        # Full coverage: support ~2 nodes/TEC clears the
        # _CAP_REFINE_MIN_SUPPORT=64 gate on a 36-tile grid.
        return PackageThermalModel(
            grid, power, tec_tiles=tuple(range(grid.num_tiles)),
            solver_mode="reuse",
        )

    def test_refined_solve_matches_fresh_factorization(self):
        refined_model = self._big_model()
        fresh_model = self._big_model()
        anchor, probe = 1.0, 1.05
        refined_model.solve(anchor)          # caches the anchor factors
        before = refined_model.solver.stats.copy()
        got = refined_model.solve(probe).theta_k
        delta = refined_model.solver.stats.diff(before)
        assert delta.cap_refinements > 0
        assert delta.cap_factorizations == 0
        want = fresh_model.solve(probe).theta_k
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)

    def test_small_support_never_refines(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        solver.solve(1.0)
        solver.solve(1.05)
        assert solver.stats.cap_refinements == 0

    def test_failed_refinement_falls_back_to_fresh_factors(self, monkeypatch):
        import repro.thermal.session as session_module

        # Zero sweeps: every refinement attempt gives up immediately,
        # so the solver must fall back to a fresh factorization and
        # stay exact.
        monkeypatch.setattr(session_module, "_CAP_REFINE_MAX_ITERATIONS", 0)
        model = self._big_model()
        reference = self._big_model()
        model.solve(1.0)
        before = model.solver.stats.copy()
        got = model.solve(1.05).theta_k
        delta = model.solver.stats.diff(before)
        assert delta.cap_refine_failures > 0
        assert delta.cap_refinements == 0
        assert delta.cap_factorizations > 0
        want = reference.solve(1.05).theta_k
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
