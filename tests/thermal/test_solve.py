"""Steady-state solver: correctness, caching, singular handling."""

import numpy as np
import pytest

from repro.thermal.assembly import assemble
from repro.thermal.network import NodeRole, ThermalNetwork
from repro.thermal.solve import SingularSystemError, SteadyStateSolver
from repro.utils import celsius_to_kelvin


@pytest.fixture()
def tec_system():
    net = ThermalNetwork()
    sil = net.add_node("sil", NodeRole.SILICON)
    snk = net.add_node("snk", NodeRole.SINK)
    cold = net.add_node("cold", NodeRole.TEC_COLD)
    hot = net.add_node("hot", NodeRole.TEC_HOT)
    net.add_conductance(sil, cold, 0.3)
    net.add_conductance(cold, hot, 0.02)
    net.add_conductance(hot, snk, 0.3)
    net.add_conductance(sil, snk, 0.01)
    net.add_ground_conductance(snk, 1.0)
    net.add_source(sil, 0.5)
    net.add_joule(cold, 1.25e-3)
    net.add_joule(hot, 1.25e-3)
    net.set_peltier(hot, +2e-4)
    net.set_peltier(cold, -2e-4)
    return assemble(net, 45.0)


class TestSolve:
    def test_zero_current_matches_dense_solve(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        theta = solver.solve(0.0)
        expected = np.linalg.solve(tec_system.g_matrix.toarray(), tec_system.p_base)
        assert np.allclose(theta, expected)

    def test_all_temperatures_above_ambient_without_cooling(self, tec_system):
        theta = SteadyStateSolver(tec_system).solve(0.0)
        assert np.all(theta >= celsius_to_kelvin(45.0) - 1e-9)

    def test_current_changes_solution(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        assert not np.allclose(solver.solve(0.0), solver.solve(5.0))

    def test_cache_reuses_factorization(self, tec_system):
        solver = SteadyStateSolver(tec_system, cache_size=2)
        solver.solve(1.0)
        lu_first = solver._lu_cache[1.0]
        solver.solve(1.0)
        assert solver._lu_cache[1.0] is lu_first

    def test_cache_eviction(self, tec_system):
        solver = SteadyStateSolver(tec_system, cache_size=2)
        solver.solve(1.0)
        solver.solve(2.0)
        solver.solve(3.0)
        assert 1.0 not in solver._lu_cache
        assert {2.0, 3.0} <= set(solver._lu_cache)

    def test_cache_size_validation(self, tec_system):
        with pytest.raises(ValueError):
            SteadyStateSolver(tec_system, cache_size=0)

    def test_check_definite_raises_beyond_runaway(self, tec_system):
        from repro.linalg.runaway import runaway_current

        solver = SteadyStateSolver(tec_system)
        lam = runaway_current(tec_system.g_matrix, tec_system.d_diagonal).value
        with pytest.raises(SingularSystemError):
            solver.solve(1.5 * lam, check_definite=True)

    def test_below_runaway_passes_check(self, tec_system):
        from repro.linalg.runaway import runaway_current

        solver = SteadyStateSolver(tec_system)
        lam = runaway_current(tec_system.g_matrix, tec_system.d_diagonal).value
        theta = solver.solve(0.5 * lam, check_definite=True)
        assert np.all(np.isfinite(theta))


class TestRhsAndInfluence:
    def test_solve_rhs_shape_check(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        with pytest.raises(ValueError, match="rhs"):
            solver.solve_rhs(0.0, np.zeros(3))

    def test_influence_rows_match_inverse(self, tec_system):
        solver = SteadyStateSolver(tec_system)
        rows = solver.influence_rows(0.0, [0, 2])
        inverse = np.linalg.inv(tec_system.g_matrix.toarray())
        assert np.allclose(rows[0], inverse[0])
        assert np.allclose(rows[1], inverse[2])

    def test_influence_rows_nonnegative(self, tec_system):
        """Lemma 3 seen through the solver: H entries >= 0."""
        solver = SteadyStateSolver(tec_system)
        rows = solver.influence_rows(0.0, range(tec_system.num_nodes))
        assert np.all(rows >= -1e-12)
