"""The package thermal model: construction, physics sanity, TEC wiring."""

import math

import numpy as np
import pytest

from repro.tec.materials import TecDeviceParameters
from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel
from repro.thermal.network import NodeRole


class TestConstruction:
    def test_node_budget(self, small_model):
        # 4 layers x 16 tiles + 4 spreader periphery + 4 sink inner + 4 outer
        assert small_model.num_nodes == 4 * 16 + 12

    def test_tec_replaces_tim_node(self, small_grid, small_power):
        bare = PackageThermalModel(small_grid, small_power)
        deployed = PackageThermalModel(small_grid, small_power, tec_tiles=(5,))
        # one TIM node removed, two TEC nodes added
        assert deployed.num_nodes == bare.num_nodes + 1
        assert len(deployed.network.indices_with_role(NodeRole.TIM)) == 15
        assert len(deployed.hot_nodes) == 1
        assert len(deployed.cold_nodes) == 1

    def test_power_map_validation(self, small_grid):
        with pytest.raises(ValueError, match="length"):
            PackageThermalModel(small_grid, np.zeros(5))
        with pytest.raises(ValueError, match="non-negative"):
            PackageThermalModel(small_grid, np.full(16, -1.0))

    def test_tec_tile_bounds(self, small_grid, small_power):
        with pytest.raises(IndexError):
            PackageThermalModel(small_grid, small_power, tec_tiles=(16,))

    def test_duplicate_tec_tiles_deduplicated(self, small_grid, small_power):
        model = PackageThermalModel(small_grid, small_power, tec_tiles=(5, 5, 5))
        assert model.tec_tiles == (5,)

    def test_grid_type_enforced(self, small_power):
        with pytest.raises(TypeError):
            PackageThermalModel("not a grid", small_power)

    def test_total_chip_power(self, small_model, small_power):
        assert small_model.total_chip_power_w == pytest.approx(float(np.sum(small_power)))

    def test_with_tec_tiles_preserves_configuration(self, small_model):
        sibling = small_model.with_tec_tiles((0, 1))
        assert sibling.stack is small_model.stack
        assert sibling.device is small_model.device
        assert sibling.tec_tiles == (0, 1)
        assert np.array_equal(sibling.power_map, small_model.power_map)


class TestPhysicsSanity:
    def test_everything_above_ambient_passively(self, small_model):
        state = small_model.solve(0.0)
        assert np.all(state.silicon_c >= small_model.stack.ambient_c - 1e-9)

    def test_hot_block_is_hottest(self, small_model):
        state = small_model.solve(0.0)
        assert state.peak_tile in (5, 6, 9, 10)

    def test_energy_balance(self, small_model):
        """Total heat leaving through convection equals chip power."""
        state = small_model.solve(0.0)
        net = small_model.network
        ambient_k = state.theta_k[0] * 0.0 + 318.15
        flux = sum(
            g * (state.theta_k[node] - ambient_k)
            for node, g in net.ground_items()
        )
        assert flux == pytest.approx(small_model.total_chip_power_w, rel=1e-9)

    def test_more_power_is_hotter(self, small_grid, small_power):
        hot = PackageThermalModel(small_grid, small_power * 2.0)
        cold = PackageThermalModel(small_grid, small_power)
        assert hot.solve().peak_silicon_c > cold.solve().peak_silicon_c

    def test_zero_power_sits_at_ambient(self, small_grid):
        model = PackageThermalModel(small_grid, np.zeros(16))
        state = model.solve(0.0)
        assert np.allclose(state.silicon_c, model.stack.ambient_c, atol=1e-9)

    def test_superposition(self, small_grid, small_power):
        """The passive network is linear: theta(p1 + p2) - ambient =
        (theta(p1) - amb) + (theta(p2) - amb)."""
        amb = PackageThermalModel(small_grid, np.zeros(16)).solve().silicon_c
        a = PackageThermalModel(small_grid, small_power).solve().silicon_c
        b = PackageThermalModel(small_grid, small_power[::-1].copy()).solve().silicon_c
        both = PackageThermalModel(
            small_grid, small_power + small_power[::-1]
        ).solve().silicon_c
        assert np.allclose(both - amb, (a - amb) + (b - amb), atol=1e-9)

    def test_negative_current_rejected(self, small_deployed):
        with pytest.raises(ValueError):
            small_deployed.solve(-1.0)


class TestTecBehaviour:
    def test_moderate_current_cools_hotspot(self, small_grid, small_power):
        bare = PackageThermalModel(small_grid, small_power)
        deployed = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6, 9, 10)
        )
        bare_peak = bare.solve().peak_silicon_c
        cooled_peak = deployed.solve(4.0).peak_silicon_c
        assert cooled_peak < bare_peak

    def test_excessive_current_overheats(self, small_deployed):
        """The over-current phenomenon of Section III: too much supply
        current heats the chip instead of cooling it."""
        optimum_region = small_deployed.solve(4.0).peak_silicon_c
        excessive = small_deployed.solve(60.0).peak_silicon_c
        assert excessive > optimum_region

    def test_tec_power_equation3(self, small_deployed):
        """P_TEC from the state matches r i^2 + alpha i dtheta summed."""
        current = 5.0
        state = small_deployed.solve(current)
        device = small_deployed.device
        cold, hot = state.tec_face_temperatures_k()
        expected = sum(
            device.electrical_resistance * current**2
            + device.seebeck * current * (th - tc)
            for tc, th in zip(cold, hot)
        )
        assert state.tec_input_power_w() == pytest.approx(expected)

    def test_tec_power_zero_at_zero_current(self, small_deployed):
        assert small_deployed.solve(0.0).tec_input_power_w() == pytest.approx(0.0)

    def test_energy_balance_with_tec(self, small_deployed):
        """Convected heat = chip power + TEC input power (Section III)."""
        current = 5.0
        state = small_deployed.solve(current)
        net = small_deployed.network
        flux = sum(
            g * (state.theta_k[node] - 318.15)
            for node, g in net.ground_items()
        )
        expected = small_deployed.total_chip_power_w + state.tec_input_power_w()
        assert flux == pytest.approx(expected, rel=1e-9)

    def test_runaway_current_finite_with_tecs(self, small_deployed):
        lam = small_deployed.runaway_current().value
        assert 0.0 < lam < math.inf

    def test_runaway_current_infinite_without_tecs(self, small_model):
        assert math.isinf(small_model.runaway_current().value)

    def test_runaway_methods_agree(self, small_deployed):
        eigen = small_deployed.runaway_current(method="eigen").value
        search = small_deployed.runaway_current(
            method="binary-search", tolerance=1e-9
        ).value
        assert search == pytest.approx(eigen, rel=1e-6)


class TestThermalState:
    def test_grid_view_shape(self, small_model):
        assert small_model.solve().silicon_grid_c.shape == (4, 4)

    def test_peak_consistency(self, small_model):
        state = small_model.solve()
        assert state.peak_silicon_c == pytest.approx(float(np.max(state.silicon_grid_c)))
        assert state.silicon_c[state.peak_tile] == pytest.approx(state.peak_silicon_c)

    def test_temperature_c_per_node(self, small_model):
        state = small_model.solve()
        node = small_model.silicon_nodes[3]
        assert state.temperature_c(node) == pytest.approx(state.silicon_c[3])

    def test_face_temperatures_empty_without_tecs(self, small_model):
        cold, hot = small_model.solve().tec_face_temperatures_k()
        assert cold.size == 0 and hot.size == 0


class TestDegenerateGeometries:
    def test_no_overhang_package(self, small_power):
        """Spreader/sink exactly die-sized: no periphery nodes."""
        from repro.thermal.materials import COPPER
        from repro.thermal.stack import Layer, PackageStack

        grid = TileGrid(4, 4)
        stack = PackageStack(
            spreader=Layer("spreader", COPPER, thickness=1e-3, side=grid.width),
            sink=Layer("sink", COPPER, thickness=6.9e-3, side=grid.width),
        )
        model = PackageThermalModel(grid, small_power, stack=stack)
        assert model.num_nodes == 4 * 16
        state = model.solve()
        assert np.all(np.isfinite(state.silicon_c))

    def test_sink_overhang_only(self, small_power):
        """Spreader die-sized but sink larger: outer ring couples to
        the sink edge tiles directly."""
        from repro.thermal.materials import COPPER
        from repro.thermal.stack import Layer, PackageStack

        grid = TileGrid(4, 4)
        stack = PackageStack(
            spreader=Layer("spreader", COPPER, thickness=1e-3, side=grid.width),
            sink=Layer("sink", COPPER, thickness=6.9e-3, side=3 * grid.width),
        )
        model = PackageThermalModel(grid, small_power, stack=stack)
        assert model.num_nodes == 4 * 16 + 4  # four outer ring nodes
        assert np.all(np.isfinite(model.solve().silicon_c))

    def test_single_tile_grid(self):
        model = PackageThermalModel(TileGrid(1, 1), np.array([0.5]))
        assert np.isfinite(model.solve().peak_silicon_c)

    def test_custom_device(self, small_grid, small_power):
        device = TecDeviceParameters(seebeck=1e-4)
        model = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5,), device=device
        )
        assert model.system.d_diagonal[model.hot_nodes[0]] == pytest.approx(1e-4)


class TestNetworkBlueprint:
    """Incremental assembly must be indistinguishable from a rebuild."""

    @pytest.fixture(scope="class")
    def blueprint(self, small_grid, small_power):
        return PackageThermalModel(small_grid, small_power).network_blueprint()

    @pytest.mark.parametrize(
        "tiles", [(), (5,), (5, 6), (5, 6, 9, 10), tuple(range(16))]
    )
    def test_replay_matches_scratch_build(self, small_grid, small_power,
                                          blueprint, tiles):
        scratch = PackageThermalModel(small_grid, small_power, tec_tiles=tiles)
        replayed = PackageThermalModel(
            small_grid, small_power, tec_tiles=tiles, blueprint=blueprint
        )
        assert np.array_equal(
            scratch.system.g_matrix.toarray(), replayed.system.g_matrix.toarray()
        )
        assert np.array_equal(scratch.system.d_diagonal, replayed.system.d_diagonal)
        assert np.array_equal(scratch.system.p_base, replayed.system.p_base)
        assert np.array_equal(scratch.system.joule, replayed.system.joule)
        assert [n.name for n in scratch.network.nodes] == [
            n.name for n in replayed.network.nodes
        ]
        assert len(scratch.stamps) == len(replayed.stamps)
        for a, b in zip(scratch.stamps, replayed.stamps):
            assert (a.tile, a.hot_node, a.cold_node) == (b.tile, b.hot_node, b.cold_node)

    def test_replayed_model_solves_identically(self, small_grid, small_power,
                                               blueprint):
        tiles = (5, 6, 9, 10)
        scratch = PackageThermalModel(small_grid, small_power, tec_tiles=tiles)
        replayed = PackageThermalModel(
            small_grid, small_power, tec_tiles=tiles, blueprint=blueprint
        )
        state_a = scratch.solve(2.0)
        state_b = replayed.solve(2.0)
        assert np.array_equal(state_a.theta_k, state_b.theta_k)

    def test_build_counters(self, small_grid, small_power, blueprint):
        from repro.thermal.solve import SolverStats

        stats = SolverStats()
        PackageThermalModel(
            small_grid, small_power, tec_tiles=(5,), blueprint=blueprint,
            solver_stats=stats,
        )
        assert stats.incremental_builds == 1
        assert stats.full_builds == 0
        PackageThermalModel(small_grid, small_power, solver_stats=stats)
        assert stats.full_builds == 1
