"""End-to-end behaviour of the geometric-multigrid solver tier.

The ``mg`` backend answers ``(G - i D) theta = p`` with one
aggregation hierarchy per view — built on the current-independent base
operator, applied matrix-free through the lattice stencil, with the
Peltier ``-iD`` term as a fine-level diagonal correction — so these
tests pin the contracts the backend adds on top of the generic
multigrid algebra (:mod:`tests.linalg.test_multigrid`):

* differential accuracy against the direct backend to 1e-9 K across
  currents up to 95% of the runaway limit;
* hierarchy economics — built exactly once per view across currents,
  batches and rounds, aggregation plan shared across sibling views;
* end-to-end routing: ``backend="mg"`` through a sweep scenario and
  through the serve tier's default-backend config, bit-stably.
"""

import pickle

import numpy as np
import pytest

from repro.thermal.model import PackageThermalModel
from repro.thermal.solve import SteadyStateSolver

_TILES = (5, 6, 9, 10)


@pytest.fixture
def make_model(small_grid, small_power):
    """A fresh deployed model per call — private session and stats."""

    def build(mode="mg", **kwargs):
        return PackageThermalModel(
            small_grid, small_power, tec_tiles=_TILES,
            solver_mode=mode, **kwargs,
        )

    return build


def _probe_currents(model):
    lam = model.runaway_current().value
    return [0.0, 0.3 * lam, 0.6 * lam, 0.8 * lam, 0.9 * lam]


class TestMgDifferential:
    def test_matches_direct_to_1e9_kelvin(self, make_model):
        """mg-CG at rtol 1e-12 agrees with the per-current LU to 1e-9 K
        on every probe current up to 90% of the runaway limit — and
        genuinely through the multigrid path (zero fallbacks)."""
        direct = make_model("direct")
        mg = SteadyStateSolver(direct.system, mode="mg", krylov_rtol=1e-12)
        for current in _probe_currents(direct):
            reference = direct.solver.solve(current)
            theta = mg.solve(current)
            assert np.max(np.abs(theta - reference)) <= 1e-9
        assert mg.stats.mg_fallbacks == 0
        assert mg.stats.mg_solves == len(_probe_currents(direct))

    def test_near_runaway_matches_to_machine_relative(self, make_model):
        """At 95% of ``lambda_m`` the solution norm is ~1e5 K (the
        system is nearly singular), so the criterion switches to
        relative: both backends carry the same near-runaway solution
        to ~100x machine epsilon."""
        direct = make_model("direct")
        current = 0.95 * direct.runaway_current().value
        mg = SteadyStateSolver(direct.system, mode="mg", krylov_rtol=1e-12)
        reference = direct.solver.solve(current)
        theta = mg.solve(current)
        scale = np.max(np.abs(reference))
        assert np.max(np.abs(theta - reference)) <= 1e-12 * scale
        assert mg.stats.mg_fallbacks == 0

    def test_batch_matches_serial_bitwise(self, make_model):
        model = make_model("mg")
        currents = _probe_currents(model)[:3]
        serial = [model.solver.solve(i).copy() for i in currents]
        fresh = make_model("mg")
        batch = fresh.session.solve_batch(currents)
        for j, reference in enumerate(serial):
            np.testing.assert_array_equal(batch.temperatures[:, j], reference)

    def test_assembled_system_carries_the_lattice(self, make_model):
        system = make_model("mg").system
        assert system.lattice is not None
        assert system.lattice.num_nodes == system.num_nodes
        # The tile grid covers most nodes; periphery rings stay off.
        on = system.lattice.on_lattice()
        assert 0 < np.count_nonzero(~on) < np.count_nonzero(on)


class TestHierarchyEconomics:
    def test_hierarchy_built_once_per_view(self, make_model):
        model = make_model("mg")
        currents = _probe_currents(model)
        for current in currents:
            model.solver.solve(current)
        model.session.solve_batch(list(reversed(currents)))
        stats = model.solver.stats
        assert stats.mg_hierarchies == 1
        assert stats.mg_solves >= len(currents)
        assert stats.mg_cycles > 0
        assert model.session.cache_info()["mg_hierarchies"] == 1

    def test_plan_shared_across_sibling_views(self, make_model):
        model = make_model("mg")
        model.solver.solve(0.4)
        session = model.session
        assert session._mg_plan is not None
        shift = 0.5 + 0.01 * np.arange(model.num_nodes)
        view = session.view(shift)
        view.solve_rhs(0.4, np.ones(model.num_nodes))
        assert model.solver.stats.mg_hierarchies == 2
        # The shifted view re-Galerkins through the shared aggregation
        # plan instead of re-aggregating: the plan arrays are the same
        # objects, not equal copies.
        for mine, theirs in zip(view._mg.plan, session._mg_plan):
            assert mine is theirs

    def test_zero_current_stays_matrix_free(self, make_model):
        """i = 0 (no Peltier diagonal) must not build the base LU the
        historical shortcut used — the hierarchy answers it."""
        model = make_model("mg")
        model.solver.solve(0.0)
        assert model.solver.stats.mg_solves == 1
        assert model.solver.stats.mg_fallbacks == 0
        assert model.session.cache_info()["base_factorizations"] == 0
        assert model.session.cache_info()["lu_entries"] == 0

    def test_mg_mode_is_a_solver_mode_everywhere(self):
        from repro.cli import _BACKENDS
        from repro.thermal.session import SOLVER_MODES

        assert "mg" in SOLVER_MODES
        assert "mg" in _BACKENDS


class TestMgStateAccounting:
    def test_solver_state_bytes_counts_the_hierarchy(self, make_model):
        model = make_model("mg")
        model.solver.solve(0.4)
        hierarchy = model.solver._mg
        assert hierarchy is not None
        assert hierarchy.operator_bytes() > 0
        assert model.solver.solver_state_bytes() >= hierarchy.operator_bytes()

    def test_fork_drops_the_hierarchy_then_rebuilds(self, make_model):
        model = make_model("mg")
        currents = _probe_currents(model)[:2]
        warm = [model.solver.solve(i).copy() for i in currents]
        clone = pickle.loads(pickle.dumps(model))
        assert clone.solver._mg is None  # dropped with the live splu
        for current, reference in zip(currents, warm):
            np.testing.assert_array_equal(clone.solver.solve(current), reference)
        assert clone.solver.stats.mg_hierarchies >= 1


class TestMgThroughSweep:
    def _scenario(self, backend, name):
        from repro.sweep import Scenario

        power = [0.08] * 16
        for tile in _TILES:
            power[tile] = 0.55
        return Scenario(
            name=name, task="solve", rows=4, cols=4, power_map=tuple(power),
            tec_tiles=_TILES, current_a=0.4, backend=backend,
        )

    def test_mg_scenario_agrees_with_direct(self):
        from repro.sweep import run_sweep
        from repro.sweep import worker as sweep_worker

        sweep_worker.clear_caches()
        report = run_sweep(
            [self._scenario("mg", "mg"), self._scenario("direct", "direct")]
        )
        assert report.ok
        mg = report.result_for("mg").values
        direct = report.result_for("direct").values
        assert mg["peak_c"] == pytest.approx(direct["peak_c"], abs=1e-6)

    def test_mg_scenario_is_bit_stable(self):
        from repro.sweep import run_sweep
        from repro.sweep import worker as sweep_worker

        values = []
        for _ in range(2):
            sweep_worker.clear_caches()
            report = run_sweep([self._scenario("mg", "mg")])
            assert report.ok
            values.append(report.result_for("mg").values)
        assert values[0] == values[1]


class TestMgThroughServe:
    def test_default_backend_mg_routes_and_is_bit_stable(self):
        from tests.serve.helpers import (
            asgi_request,
            small_solve_body,
            with_app,
        )

        async def defaulted(app):
            return await asgi_request(
                app, "POST", "/solve", small_solve_body()
            )

        async def explicit(app):
            return await asgi_request(
                app, "POST", "/solve", small_solve_body(backend="mg")
            )

        status_a, a = with_app(defaulted, default_backend="mg")
        status_b, b = with_app(explicit)
        assert status_a == 200 and status_b == 200
        # The server default and the per-request backend name the same
        # pool entry and produce bit-identical values.
        assert a["pool_key"] == b["pool_key"]
        assert a["results"][0]["values"] == b["results"][0]["values"]
