"""Thermal network builder semantics."""

import pytest

from repro.thermal.network import NodeRole, ThermalNetwork


@pytest.fixture()
def net():
    network = ThermalNetwork()
    network.add_node("a", NodeRole.SILICON, tile=0)
    network.add_node("b", NodeRole.TIM)
    network.add_node("c", NodeRole.TEC_HOT)
    return network


class TestNodes:
    def test_indices_sequential(self, net):
        assert net.num_nodes == 3
        assert net.add_node("d") == 3

    def test_role_required_type(self):
        network = ThermalNetwork()
        with pytest.raises(TypeError):
            network.add_node("x", role="silicon")

    def test_meta_stored(self, net):
        assert net.nodes[0].meta["tile"] == 0

    def test_indices_with_role(self, net):
        assert net.indices_with_role(NodeRole.SILICON) == [0]
        assert net.indices_with_role(NodeRole.TEC_COLD) == []

    def test_node_name(self, net):
        assert net.node_name(1) == "b"


class TestConductances:
    def test_parallel_accumulation(self, net):
        net.add_conductance(0, 1, 1.0)
        net.add_conductance(1, 0, 2.0)  # same pair, opposite order
        assert dict(net.conductance_items()) == {(0, 1): 3.0}

    def test_self_loop_rejected(self, net):
        with pytest.raises(ValueError, match="differ"):
            net.add_conductance(1, 1, 1.0)

    def test_nonpositive_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_conductance(0, 1, 0.0)

    def test_unknown_node_rejected(self, net):
        with pytest.raises(IndexError):
            net.add_conductance(0, 99, 1.0)


class TestGroundSourcesJoule:
    def test_ground_accumulates(self, net):
        net.add_ground_conductance(2, 0.5)
        net.add_ground_conductance(2, 0.25)
        assert net.total_ground_conductance() == pytest.approx(0.75)

    def test_sources_accumulate_and_skip_zero(self, net):
        net.add_source(0, 1.0)
        net.add_source(0, 0.5)
        net.add_source(1, 0.0)
        assert dict(net.source_items()) == {0: 1.5}
        assert net.total_source_power() == pytest.approx(1.5)

    def test_negative_source_rejected(self, net):
        with pytest.raises(ValueError):
            net.add_source(0, -1.0)

    def test_joule_accumulates(self, net):
        net.add_joule(2, 0.001)
        net.add_joule(2, 0.001)
        assert dict(net.joule_items()) == {2: 0.002}


class TestPeltier:
    def test_set_once(self, net):
        net.set_peltier(2, +2e-4)
        assert dict(net.peltier_items()) == {2: 2e-4}

    def test_double_assignment_rejected(self, net):
        net.set_peltier(2, +2e-4)
        with pytest.raises(ValueError, match="already"):
            net.set_peltier(2, -2e-4)

    def test_zero_rejected(self, net):
        with pytest.raises(ValueError, match="non-zero"):
            net.set_peltier(2, 0.0)

    def test_negative_allowed_for_cold(self, net):
        net.set_peltier(1, -2e-4)
        assert dict(net.peltier_items()) == {1: -2e-4}
