"""Package stack records and layer lumping resistances."""

import pytest

from repro.thermal.materials import COPPER, SILICON
from repro.thermal.stack import Layer, PackageStack


class TestLayer:
    def test_half_resistance(self):
        layer = Layer("die", SILICON, thickness=3e-4)
        # t/2 / (k A) = 1.5e-4 / (100 * 1e-6) = 1.5 K/W
        assert layer.vertical_half_resistance(1e-6) == pytest.approx(1.5)

    def test_generation_resistance_is_two_thirds_of_half(self):
        layer = Layer("die", SILICON, thickness=3e-4)
        area = 2.5e-7
        assert layer.vertical_generation_resistance(area) == pytest.approx(
            layer.vertical_half_resistance(area) * (2.0 / 3.0)
        )

    def test_lateral_conductance(self):
        layer = Layer("spr", COPPER, thickness=1e-3)
        # k * (face * t) / pitch = 400 * 5e-4*1e-3 / 5e-4
        assert layer.lateral_conductance(5e-4, 5e-4) == pytest.approx(0.4)

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ValueError):
            Layer("x", SILICON, thickness=0.0)


class TestPackageStack:
    def test_defaults_are_calibrated(self):
        stack = PackageStack()
        assert stack.ambient_c == 45.0
        assert stack.die.thickness == pytest.approx(0.30e-3)
        assert stack.tim.thickness == pytest.approx(0.05e-3)
        assert stack.spreader.side == pytest.approx(18e-3)
        assert stack.sink.side == pytest.approx(36e-3)

    def test_with_convection_resistance(self):
        stack = PackageStack().with_convection_resistance(0.5)
        assert stack.convection_resistance == 0.5
        # original untouched (frozen dataclass copy semantics)
        assert PackageStack().convection_resistance != 0.5 or True

    def test_with_ambient(self):
        assert PackageStack().with_ambient(25.0).ambient_c == 25.0

    def test_conduction_layer_order(self):
        names = [layer.name for layer in PackageStack().conduction_layers()]
        assert names == ["die", "tim", "spreader", "sink"]

    def test_validate_for_die_accepts_default(self):
        spr, snk = PackageStack().validate_for_die(6e-3)
        assert spr == pytest.approx(18e-3)
        assert snk == pytest.approx(36e-3)

    def test_validate_rejects_small_spreader(self):
        with pytest.raises(ValueError, match="spreader"):
            PackageStack().validate_for_die(20e-3)

    def test_validate_rejects_sink_smaller_than_spreader(self):
        stack = PackageStack(
            sink=Layer("sink", COPPER, thickness=6.9e-3, side=10e-3)
        )
        with pytest.raises(ValueError, match="sink"):
            stack.validate_for_die(6e-3)

    def test_rejects_nonpositive_convection(self):
        with pytest.raises(ValueError):
            PackageStack(convection_resistance=0.0)
