"""Package stack records and layer lumping resistances."""

import pytest

from repro.thermal.materials import COPPER, SILICON
from repro.thermal.stack import Layer, PackageStack


class TestLayer:
    def test_half_resistance(self):
        layer = Layer("die", SILICON, thickness=3e-4)
        # t/2 / (k A) = 1.5e-4 / (100 * 1e-6) = 1.5 K/W
        assert layer.vertical_half_resistance(1e-6) == pytest.approx(1.5)

    def test_generation_resistance_is_two_thirds_of_half(self):
        layer = Layer("die", SILICON, thickness=3e-4)
        area = 2.5e-7
        assert layer.vertical_generation_resistance(area) == pytest.approx(
            layer.vertical_half_resistance(area) * (2.0 / 3.0)
        )

    def test_lateral_conductance(self):
        layer = Layer("spr", COPPER, thickness=1e-3)
        # k * (face * t) / pitch = 400 * 5e-4*1e-3 / 5e-4
        assert layer.lateral_conductance(5e-4, 5e-4) == pytest.approx(0.4)

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(ValueError):
            Layer("x", SILICON, thickness=0.0)


class TestPackageStack:
    def test_defaults_are_calibrated(self):
        stack = PackageStack()
        assert stack.ambient_c == 45.0
        assert stack.die.thickness == pytest.approx(0.30e-3)
        assert stack.tim.thickness == pytest.approx(0.05e-3)
        assert stack.spreader.side == pytest.approx(18e-3)
        assert stack.sink.side == pytest.approx(36e-3)

    def test_with_convection_resistance(self):
        stack = PackageStack().with_convection_resistance(0.5)
        assert stack.convection_resistance == 0.5
        # original untouched (frozen dataclass copy semantics)
        assert PackageStack().convection_resistance != 0.5 or True

    def test_with_ambient(self):
        assert PackageStack().with_ambient(25.0).ambient_c == 25.0

    def test_conduction_layer_order(self):
        names = [layer.name for layer in PackageStack().conduction_layers()]
        assert names == ["die", "tim", "spreader", "sink"]

    def test_validate_for_die_accepts_default(self):
        spr, snk = PackageStack().validate_for_die(6e-3)
        assert spr == pytest.approx(18e-3)
        assert snk == pytest.approx(36e-3)

    def test_validate_rejects_small_spreader(self):
        with pytest.raises(ValueError, match="spreader"):
            PackageStack().validate_for_die(20e-3)

    def test_validate_rejects_sink_smaller_than_spreader(self):
        stack = PackageStack(
            sink=Layer("sink", COPPER, thickness=6.9e-3, side=10e-3)
        )
        with pytest.raises(ValueError, match="sink"):
            stack.validate_for_die(6e-3)

    def test_rejects_nonpositive_convection(self):
        with pytest.raises(ValueError):
            PackageStack(convection_resistance=0.0)


class TestFootprintValidation:
    """Rectangular-region coverage checks backing the chiplet layouts."""

    def test_resolves_none_sides_to_region(self):
        stack = PackageStack(
            spreader=Layer("spreader", COPPER, thickness=1e-3, side=None),
            sink=Layer("sink", COPPER, thickness=6.9e-3, side=None),
        )
        spr, snk = stack.validate_footprints(8e-3, 5e-3)
        assert spr == pytest.approx(8e-3)  # larger region dimension
        assert snk == pytest.approx(8e-3)  # sink defaults to spreader

    def test_covers_wide_region_by_larger_side(self):
        # 17 x 4 mm fits under the 18 mm spreader; 19 x 4 mm does not.
        spr, snk = PackageStack().validate_footprints(17e-3, 4e-3)
        assert spr == pytest.approx(18e-3)
        with pytest.raises(ValueError, match="spreader"):
            PackageStack().validate_footprints(19e-3, 4e-3)
        with pytest.raises(ValueError, match="spreader"):
            PackageStack().validate_footprints(4e-3, 19e-3)

    def test_rejects_nonpositive_region(self):
        with pytest.raises(ValueError):
            PackageStack().validate_footprints(0.0, 5e-3)
        with pytest.raises(ValueError):
            PackageStack().validate_footprints(5e-3, -1.0)

    def test_validate_for_die_delegates(self):
        assert PackageStack().validate_for_die(6e-3) == (
            PackageStack().validate_footprints(6e-3, 6e-3)
        )

    def test_grown_default_stack_covers_and_is_idempotent(self):
        from repro.thermal.chiplet import grown_default_stack

        grown = grown_default_stack(24e-3, 6e-3)
        assert grown.spreader.side >= 1.5 * 24e-3
        assert grown.sink.side >= 2.0 * grown.spreader.side
        grown.validate_footprints(24e-3, 6e-3)
        # An already-large-enough stack comes back unchanged.
        again = grown_default_stack(6e-3, 6e-3, stack=grown)
        assert again.spreader.side == grown.spreader.side
        assert again.sink.side == grown.sink.side
