"""Cross-round bordered Woodbury reuse (``repro.thermal.border``)."""

import numpy as np
import pytest

from repro.core.problem import CoolingSystemProblem
from repro.thermal.border import BorderedDeployContext, _BorderedDense
from repro.thermal.geometry import TileGrid


def _spd(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestBorderedDense:
    def test_extend_matches_full_solve(self):
        full = _spd(9, seed=0)
        chain = _BorderedDense(full[:5, :5])
        assert chain.extend(full[:5, 5:7], full[5:7, :5], full[5:7, 5:7])
        assert chain.extend(full[:7, 7:], full[7:, :7], full[7:, 7:])
        rhs = np.arange(9, dtype=float)
        np.testing.assert_allclose(
            chain.solve(rhs), np.linalg.solve(full, rhs), rtol=1e-10
        )

    def test_prefix_levels_solve_smaller_matrix(self):
        full = _spd(8, seed=1)
        chain = _BorderedDense(full[:5, :5])
        chain.extend(full[:5, 5:], full[5:, :5], full[5:, 5:])
        rhs = np.ones(5)
        np.testing.assert_allclose(
            chain.solve(rhs, levels=0),
            np.linalg.solve(full[:5, :5], rhs),
            rtol=1e-10,
        )
        assert chain.size_at(0) == 5
        assert chain.size_at(1) == 8

    def test_matrix_rhs(self):
        full = _spd(6, seed=2)
        chain = _BorderedDense(full[:4, :4])
        chain.extend(full[:4, 4:], full[4:, :4], full[4:, 4:])
        rhs = np.eye(6)[:, :3]
        np.testing.assert_allclose(
            chain.solve(rhs), np.linalg.solve(full, rhs), rtol=1e-10
        )

    @pytest.mark.filterwarnings("ignore::scipy.linalg.LinAlgWarning")
    def test_singular_schur_rejected(self):
        base = np.eye(3)
        chain = _BorderedDense(base)
        # D - C A^{-1} B = 1 - 1 = 0: singular Schur complement.
        assert not chain.extend(
            np.array([[1.0], [0.0], [0.0]]),
            np.array([[1.0, 0.0, 0.0]]),
            np.array([[1.0]]),
        )
        assert chain.levels == 0

    @pytest.mark.filterwarnings("ignore::scipy.linalg.LinAlgWarning")
    def test_singular_base_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            _BorderedDense(np.zeros((3, 3)))


@pytest.fixture()
def reuse_problem():
    grid = TileGrid(5, 5)
    power = np.full(grid.num_tiles, 0.1)
    power[12] = 0.6
    return CoolingSystemProblem(
        grid, power, max_temperature_c=90.0, name="border-test",
    ).configure_solver(mode="reuse")


class TestBorderedDeployContext:
    def test_first_round_is_anchor(self, reuse_problem):
        context = BorderedDeployContext()
        assert context.attach(reuse_problem.model((12,))) == "anchor"
        assert context.anchor_rounds == 1

    def test_grown_round_reuses_anchor_and_stays_exact(self, reuse_problem):
        context = BorderedDeployContext()
        context.attach(reuse_problem.model((12,)))
        grown = reuse_problem.model((12, 7, 17))
        mode = context.attach(grown)
        # No new sparse LU either way; bordering needs the new
        # correction block to be disjoint from the old one.
        assert mode in ("bordered", "refactorized")
        reference = CoolingSystemProblem(
            reuse_problem.grid,
            reuse_problem.power_map,
            max_temperature_c=90.0,
            name="border-ref",
        ).configure_solver(mode="direct").model((12, 7, 17))
        for current in (0.0, 1.0, 3.0):
            np.testing.assert_allclose(
                grown.solve(current).theta_k,
                reference.solve(current).theta_k,
                rtol=1e-9,
                atol=1e-9,
            )

    def test_third_round_extends_the_same_chain(self, reuse_problem):
        context = BorderedDeployContext()
        context.attach(reuse_problem.model((12,)))
        context.attach(reuse_problem.model((12, 7)))
        model = reuse_problem.model((12, 7, 2, 22))
        mode = context.attach(model)
        assert mode in ("bordered", "refactorized")
        assert context.anchor_rounds == 1
        assert context.bordered_rounds + context.refactorized_rounds == 2

    def test_non_reuse_backend_is_skipped(self, reuse_problem):
        direct = reuse_problem.with_solver_mode("direct")
        context = BorderedDeployContext()
        assert context.attach(direct.model((12,))) == "skipped"

    def test_oversized_correction_reanchors(self, reuse_problem):
        context = BorderedDeployContext(max_correction_fraction=0.0)
        context.attach(reuse_problem.model((12,)))
        mode = context.attach(reuse_problem.model((12, 7)))
        assert mode == "reanchored"
        assert context.anchor_rounds == 2
