"""Transient RC extension: stability, settling, schedules."""

import numpy as np
import pytest

from repro.thermal.transient import TransientSimulator, node_capacitances


class TestCapacitances:
    def test_all_positive(self, small_deployed):
        capacitance = node_capacitances(small_deployed)
        assert capacitance.shape == (small_deployed.num_nodes,)
        assert np.all(capacitance > 0.0)

    def test_sink_heavier_than_die(self, small_model):
        """The thick copper sink stores far more heat than thin silicon."""
        capacitance = node_capacitances(small_model)
        die_c = capacitance[small_model.silicon_nodes[0]]
        from repro.thermal.network import NodeRole

        sink_node = small_model.network.indices_with_role(NodeRole.SINK)[0]
        assert capacitance[sink_node] > 10.0 * die_c


class TestSimulator:
    def test_starts_at_ambient(self, small_model):
        sim = TransientSimulator(small_model, dt=1e-3)
        assert sim.peak_silicon_c() == pytest.approx(small_model.stack.ambient_c)

    def test_steady_initial_state(self, small_model):
        sim = TransientSimulator(small_model, dt=1e-3, initial_state="steady")
        steady_peak = small_model.solve(0.0).peak_silicon_c
        assert sim.peak_silicon_c() == pytest.approx(steady_peak)

    def test_bad_initial_state_string(self, small_model):
        with pytest.raises(ValueError):
            TransientSimulator(small_model, initial_state="lukewarm")

    def test_explicit_initial_vector(self, small_model):
        theta0 = np.full(small_model.num_nodes, 320.0)
        sim = TransientSimulator(small_model, initial_state=theta0)
        assert sim.theta_k[0] == 320.0

    def test_initial_vector_shape_checked(self, small_model):
        with pytest.raises(ValueError):
            TransientSimulator(small_model, initial_state=np.zeros(3))

    def test_monotone_heating_from_ambient(self, small_model):
        """With constant power the peak rises monotonically to steady."""
        sim = TransientSimulator(small_model, dt=0.05)
        trace = sim.run(60)
        assert np.all(np.diff(trace) >= -1e-9)
        steady = small_model.solve(0.0).peak_silicon_c
        assert trace[-1] <= steady + 1e-6

    def test_settles_to_steady_state(self, small_model):
        sim = TransientSimulator(small_model, dt=0.1)
        sim.settle(tolerance_c=1e-7)
        steady = small_model.solve(0.0).peak_silicon_c
        assert sim.peak_silicon_c() == pytest.approx(steady, abs=0.05)

    def test_settles_with_tec_current(self, small_deployed):
        sim = TransientSimulator(small_deployed, current=4.0, dt=0.1)
        sim.settle(tolerance_c=1e-7)
        steady = small_deployed.solve(4.0).peak_silicon_c
        assert sim.peak_silicon_c() == pytest.approx(steady, abs=0.05)

    def test_time_advances(self, small_model):
        sim = TransientSimulator(small_model, dt=0.25)
        sim.run(4)
        assert sim.time_s == pytest.approx(1.0)

    def test_power_schedule_drives_response(self, small_model):
        """Dropping the power mid-run cools the chip back down."""
        sim = TransientSimulator(small_model, dt=0.1)
        sim.run(100)
        hot_peak = sim.peak_silicon_c()
        zero = np.zeros_like(small_model.power_map)
        sim.run(100, power_schedule=lambda step, t: zero)
        assert sim.peak_silicon_c() < hot_peak

    def test_power_schedule_shape_checked(self, small_model):
        sim = TransientSimulator(small_model, dt=0.1)
        with pytest.raises(ValueError):
            sim.step(power_map=np.zeros(3))

    def test_large_dt_remains_stable(self, small_model):
        """Backward Euler is unconditionally stable: huge steps land on
        the steady state instead of blowing up."""
        sim = TransientSimulator(small_model, dt=1e6)
        sim.step()
        steady = small_model.solve(0.0).peak_silicon_c
        assert sim.peak_silicon_c() == pytest.approx(steady, abs=0.5)

    def test_long_horizon_matches_steady_solver(self, small_deployed):
        """The backward-Euler fixed point *is* the steady solution:
        integrated far past every time constant, the full state must
        match the steady solver to solver precision, not just the
        loose settling tolerance."""
        current = 3.0
        sim = TransientSimulator(small_deployed, current=current, dt=50.0)
        sim.run(200)
        steady = small_deployed.solve(current).theta_k
        np.testing.assert_allclose(sim.theta_k, steady, atol=1e-6, rtol=0.0)

    def test_simulators_share_the_session_view(self, small_deployed):
        """Two simulators at the same dt share one C / dt view of the
        model's solve session: the second pays zero factorizations."""
        first = TransientSimulator(small_deployed, current=2.0, dt=0.05)
        first.run(5)
        stats = small_deployed.solver.stats
        factorizations = stats.factorizations
        second = TransientSimulator(small_deployed, current=2.0, dt=0.05)
        trace = second.run(5)
        assert stats.factorizations == factorizations
        reference = TransientSimulator(small_deployed, current=2.0, dt=0.05)
        assert np.allclose(trace, reference.run(5), atol=1e-12)

    def test_run_rejects_zero_steps(self, small_model):
        with pytest.raises(ValueError):
            TransientSimulator(small_model).run(0)

    def test_settle_raises_when_capped(self, small_model):
        sim = TransientSimulator(small_model, dt=1e-6)
        with pytest.raises(RuntimeError, match="settle"):
            sim.settle(tolerance_c=0.0, max_steps=3)
