"""Assembly of (G, D, p) from a network — Lemma 1 structure included."""

import numpy as np
import pytest

from repro.linalg import cholesky_is_spd, is_irreducible, is_stieltjes
from repro.thermal.assembly import assemble
from repro.thermal.network import NodeRole, ThermalNetwork
from repro.utils import celsius_to_kelvin


def _two_node_network():
    net = ThermalNetwork()
    net.add_node("sil", NodeRole.SILICON)
    net.add_node("snk", NodeRole.SINK)
    net.add_conductance(0, 1, 2.0)
    net.add_ground_conductance(1, 0.5)
    net.add_source(0, 3.0)
    return net


class TestAssemble:
    def test_g_matrix_values(self):
        system = assemble(_two_node_network(), ambient_c=45.0)
        g = system.g_matrix.toarray()
        assert g[0, 0] == pytest.approx(2.0)
        assert g[0, 1] == pytest.approx(-2.0)
        assert g[1, 1] == pytest.approx(2.5)

    def test_p_base_carries_source_and_ambient(self):
        system = assemble(_two_node_network(), ambient_c=45.0)
        ambient_k = celsius_to_kelvin(45.0)
        assert system.p_base[0] == pytest.approx(3.0)
        assert system.p_base[1] == pytest.approx(0.5 * ambient_k)

    def test_steady_state_energy_balance(self):
        """All injected power exits through the ground conductance."""
        system = assemble(_two_node_network(), ambient_c=45.0)
        theta = np.linalg.solve(system.g_matrix.toarray(), system.p_base)
        flux_out = 0.5 * (theta[1] - celsius_to_kelvin(45.0))
        assert flux_out == pytest.approx(3.0)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            assemble(ThermalNetwork(), 45.0)

    def test_ungrounded_network_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_conductance(0, 1, 1.0)
        with pytest.raises(ValueError, match="ambient"):
            assemble(net, 45.0)


class TestTecTerms:
    def _network_with_tec(self):
        net = _two_node_network()
        cold = net.add_node("cold", NodeRole.TEC_COLD)
        hot = net.add_node("hot", NodeRole.TEC_HOT)
        net.add_conductance(0, cold, 0.3)
        net.add_conductance(hot, 1, 0.3)
        net.add_conductance(cold, hot, 0.02)
        net.add_joule(cold, 1e-3)
        net.add_joule(hot, 1e-3)
        net.set_peltier(hot, +2e-4)
        net.set_peltier(cold, -2e-4)
        return net, cold, hot

    def test_d_diagonal_signs(self):
        net, cold, hot = self._network_with_tec()
        system = assemble(net, 45.0)
        assert system.d_diagonal[hot] == pytest.approx(+2e-4)
        assert system.d_diagonal[cold] == pytest.approx(-2e-4)
        assert system.d_diagonal[0] == 0.0

    def test_system_matrix_peltier_signs(self):
        """G - iD must *add* conductance at the cold node and subtract
        at the hot node (Figure 4)."""
        net, cold, hot = self._network_with_tec()
        system = assemble(net, 45.0)
        g = system.g_matrix.toarray()
        combined = system.system_matrix(10.0).toarray()
        assert combined[cold, cold] == pytest.approx(g[cold, cold] + 10.0 * 2e-4)
        assert combined[hot, hot] == pytest.approx(g[hot, hot] - 10.0 * 2e-4)

    def test_power_vector_quadratic_in_current(self):
        net, cold, hot = self._network_with_tec()
        system = assemble(net, 45.0)
        p0 = system.power_vector(0.0)
        p5 = system.power_vector(5.0)
        assert p5[cold] - p0[cold] == pytest.approx(25.0 * 1e-3)
        assert p5[hot] - p0[hot] == pytest.approx(25.0 * 1e-3)

    def test_zero_current_shortcuts_to_base(self):
        net, _, _ = self._network_with_tec()
        system = assemble(net, 45.0)
        assert system.power_vector(0.0) is system.p_base
        assert system.system_matrix(0.0) is system.g_matrix


class TestLemma1OnPackage(object):
    """Lemma 1: the package G is an irreducible PD Stieltjes matrix."""

    def test_small_package(self, small_model):
        g = small_model.system.g_matrix
        assert is_stieltjes(g)
        assert is_irreducible(g)
        assert cholesky_is_spd(g)

    def test_deployed_package(self, small_deployed):
        g = small_deployed.system.g_matrix
        assert is_stieltjes(g)
        assert is_irreducible(g)
        assert cholesky_is_spd(g)

    def test_alpha_package(self, alpha_model):
        g = alpha_model.system.g_matrix
        assert is_stieltjes(g)
        assert is_irreducible(g)
        assert cholesky_is_spd(g)
