"""Analytic spreading resistance and its cross-check with the network."""

import numpy as np
import pytest

from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel
from repro.thermal.spreading import (
    one_dimensional_resistance,
    package_peak_resistance_estimate,
    spreading_resistance,
)
from repro.thermal.stack import PackageStack


class TestOneDimensional:
    def test_formula(self):
        # 1 mm of k=100 over 1 cm^2: 1e-3 / (100 * 1e-4) = 0.1 K/W
        assert one_dimensional_resistance(1e-3, 100.0, 1e-4) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            one_dimensional_resistance(0.0, 100.0, 1e-4)


class TestSpreadingResistance:
    def test_positive(self):
        assert spreading_resistance(1e-6, 1e-4, 1e-3, 400.0, 1e3) > 0.0

    def test_source_larger_than_plate_rejected(self):
        with pytest.raises(ValueError):
            spreading_resistance(1e-4, 1e-6, 1e-3, 400.0, 1e3)

    def test_decreases_with_conductivity(self):
        low = spreading_resistance(1e-6, 1e-4, 1e-3, 100.0, 1e3)
        high = spreading_resistance(1e-6, 1e-4, 1e-3, 400.0, 1e3)
        assert high < low

    def test_decreases_with_source_size(self):
        small = spreading_resistance(1e-6, 1e-4, 1e-3, 400.0, 1e3)
        large = spreading_resistance(4e-6, 1e-4, 1e-3, 400.0, 1e3)
        assert large < small

    def test_thicker_plate_spreads_better_for_poor_backside(self):
        """With a resistive backside, extra plate thickness helps the
        heat fan out before crossing it."""
        thin = spreading_resistance(1e-6, 1e-4, 0.2e-3, 400.0, 200.0)
        thick = spreading_resistance(1e-6, 1e-4, 2.0e-3, 400.0, 200.0)
        assert thick < thin

    def test_degenerate_full_coverage_is_nearly_1d(self):
        """Source covering (nearly) the whole plate leaves (nearly) no
        constriction: the spreading term collapses toward zero."""
        nearly_full = spreading_resistance(0.99e-4, 1e-4, 1e-3, 400.0, 1e3)
        constricted = spreading_resistance(1e-6, 1e-4, 1e-3, 400.0, 1e3)
        assert nearly_full < 0.1 * constricted


class TestPackageEstimate:
    def test_cross_check_against_network(self):
        """Hand formula vs network: the closed form is a source-centre
        maximum applied to a thin multilayer, so it brackets the
        network's cluster-average resistance from above — within a
        factor ~2.  An independent guard against shared unit errors."""
        grid = TileGrid(12, 12)
        stack = PackageStack()
        cluster = [grid.flat_index(r, c) for r in (5, 6) for c in (5, 6)]
        power = np.zeros(grid.num_tiles)
        for tile in cluster:
            power[tile] = 0.25  # 1 W total
        model = PackageThermalModel(grid, power, stack=stack)
        state = model.solve(0.0)
        rise = float(
            np.mean(state.silicon_c[cluster]) - stack.ambient_c
        )  # K per 1 W
        estimate = package_peak_resistance_estimate(stack, grid, cluster)
        assert 1.0 <= estimate / rise <= 2.5

    def test_estimate_validation(self):
        grid = TileGrid(4, 4)
        with pytest.raises(ValueError):
            package_peak_resistance_estimate(PackageStack(), grid, [])

    def test_bigger_cluster_lower_resistance(self):
        grid = TileGrid(12, 12)
        stack = PackageStack()
        small = package_peak_resistance_estimate(stack, grid, [66])
        big = package_peak_resistance_estimate(
            stack, grid, [65, 66, 77, 78]
        )
        assert big < small
