"""The active (TEC-embedded) fine-grid reference."""

import numpy as np
import pytest

from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel
from repro.thermal.reference_active import ActiveReferenceGridModel


@pytest.fixture(scope="module")
def small_setup():
    grid = TileGrid(4, 4)
    power = np.full(16, 0.08)
    for tile in (5, 6, 9, 10):
        power[tile] = 0.55
    tiles = (5, 6, 9, 10)
    compact = PackageThermalModel(grid, power, tec_tiles=tiles)
    reference = ActiveReferenceGridModel(
        grid, power, tec_tiles=tiles, device=compact.device, refine=1
    )
    return compact, reference


class TestConstruction:
    def test_tile_bounds(self):
        grid = TileGrid(2, 2)
        with pytest.raises(IndexError):
            ActiveReferenceGridModel(grid, np.zeros(4), tec_tiles=(9,))

    def test_negative_current_rejected(self, small_setup):
        _, reference = small_setup
        with pytest.raises(ValueError):
            reference.solve_active(-1.0)

    def test_device_unknowns_appended(self, small_setup):
        _, reference = small_setup
        theta = reference.solve_active(0.0)
        assert theta.shape[0] == reference.num_cells + 2 * 4


class TestPhysics:
    def test_finite_and_above_ambient_passively(self, small_setup):
        _, reference = small_setup
        tiles = reference.tile_temperatures_c_active(0.0)
        assert np.all(np.isfinite(tiles))
        assert np.all(tiles >= reference.stack.ambient_c - 1e-6)

    def test_moderate_current_cools_hot_tiles(self, small_setup):
        _, reference = small_setup
        passive = reference.tile_temperatures_c_active(0.0)
        cooled = reference.tile_temperatures_c_active(4.0)
        assert cooled.max() < passive.max()

    def test_excessive_current_heats(self, small_setup):
        _, reference = small_setup
        moderate = reference.tile_temperatures_c_active(4.0).max()
        excessive = reference.tile_temperatures_c_active(60.0).max()
        assert excessive > moderate

    def test_cold_below_hot_under_pumping(self, small_setup):
        """At strong current the devices pull their cold faces below
        their hot faces — refrigeration across the film."""
        _, reference = small_setup
        cold, hot = reference.tec_face_temperatures_k(20.0)
        assert np.all(cold < hot)

    def test_solution_cached_per_current(self, small_setup):
        _, reference = small_setup
        assert reference.solve_active(2.0) is reference.solve_active(2.0)


class TestCompactAgreement:
    @pytest.mark.parametrize("current", [0.0, 2.0, 5.0])
    def test_tile_temperatures_close(self, small_setup, current):
        """Active validation: compact vs fine grid across currents.

        The two models share only the device/material records, so
        per-tile agreement within ~1.5 C across the current range
        validates the whole active path (stamp wiring, Peltier signs,
        Joule terms, lumping conventions)."""
        compact, reference = small_setup
        fine = reference.tile_temperatures_c_active(current)
        coarse = compact.solve(current).silicon_c
        assert float(np.max(np.abs(coarse - fine))) < 1.5

    def test_peak_location_agrees(self, small_setup):
        compact, reference = small_setup
        fine = reference.tile_temperatures_c_active(3.0)
        coarse = compact.solve(3.0).silicon_c
        assert int(np.argmax(fine)) in (5, 6, 9, 10)
        assert int(np.argmax(coarse)) in (5, 6, 9, 10)

    def test_face_temperatures_close(self, small_setup):
        compact, reference = small_setup
        current = 4.0
        fine_cold, fine_hot = reference.tec_face_temperatures_k(current)
        coarse_cold, coarse_hot = compact.solve(current).tec_face_temperatures_k()
        assert np.max(np.abs(fine_cold - coarse_cold)) < 2.0
        assert np.max(np.abs(fine_hot - coarse_hot)) < 2.0


class TestAlphaActiveValidation:
    def test_alpha_deployment_agrees_at_optimum(self, alpha_greedy):
        """The headline active-validation number reported in
        EXPERIMENTS.md: worst per-tile difference at I_opt < 1.5 C."""
        model = alpha_greedy.model
        reference = ActiveReferenceGridModel(
            model.grid,
            model.power_map,
            stack=model.stack,
            tec_tiles=model.tec_tiles,
            device=model.device,
            refine=1,
        )
        fine = reference.tile_temperatures_c_active(alpha_greedy.current)
        coarse = model.solve(alpha_greedy.current).silicon_c
        diff = float(np.max(np.abs(coarse - fine)))
        assert diff < 1.5
        # and the two models agree on the achieved peak to ~0.3 C
        assert abs(float(np.max(fine)) - float(np.max(coarse))) < 0.3
