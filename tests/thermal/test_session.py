"""The shared solve-session engine: view keying and sharing, shifted
and arbitrary-diagonal solves vs a dense reference, and the LRU cache
accounting every consumer relies on."""

import numpy as np
import pytest

from repro.thermal.model import PackageThermalModel
from repro.thermal.session import SolveSession

_TILES = (5, 6, 9, 10)
_ATOL_K = 1e-6


@pytest.fixture
def make_model(small_grid, small_power):
    """A fresh deployed model per call — private session and stats, so
    cache-counter assertions never see another test's traffic."""

    def build(mode="direct", **kwargs):
        return PackageThermalModel(
            small_grid, small_power, tec_tiles=_TILES,
            solver_mode=mode, **kwargs,
        )

    return build


def _shift_for(model, scale=1.0):
    """A deterministic positive diagonal shaped like ``C / dt``."""
    n = model.num_nodes
    return scale * (0.5 + 0.01 * np.arange(n))


def _rhs_for(model, columns=None):
    n = model.num_nodes
    if columns is None:
        return np.sin(np.arange(n) + 1.0)
    return np.sin(np.arange(n * columns) + 1.0).reshape(n, columns)


class TestViewKeying:
    def test_solver_is_the_base_view(self, make_model):
        model = make_model()
        assert model.solver is model.session.base_view()
        assert model.solver is model.session.view(None)

    def test_equal_shift_bytes_share_one_view(self, make_model):
        model = make_model()
        shift = _shift_for(model)
        view = model.session.view(shift)
        assert model.session.view(shift.copy()) is view
        assert model.session.view(list(shift)) is view

    def test_distinct_shifts_get_distinct_views(self, make_model):
        model = make_model()
        session = model.session
        base_views = session.num_views
        a = session.view(_shift_for(model))
        b = session.view(_shift_for(model, scale=2.0))
        assert a is not b
        assert session.num_views == base_views + 2

    def test_cache_size_grows_but_never_shrinks(self, make_model):
        model = make_model()
        shift = _shift_for(model)
        view = model.session.view(shift, cache_size=4)
        assert view._cache_size == 4
        assert model.session.view(shift, cache_size=2) is view
        assert view._cache_size == 4
        assert model.session.view(shift, cache_size=16) is view
        assert view._cache_size == 16

    def test_shift_shape_validated(self, make_model):
        model = make_model()
        with pytest.raises(ValueError, match="shift must have length"):
            model.session.view(np.ones(3))

    def test_cache_size_validated(self, make_model):
        model = make_model()
        with pytest.raises(ValueError, match="cache_size"):
            model.session.view(_shift_for(model), cache_size=0)
        with pytest.raises(ValueError, match="cache_size"):
            SolveSession(model.system, cache_size=0)

    def test_bad_mode_rejected(self, make_model):
        model = make_model()
        with pytest.raises(ValueError, match="mode"):
            SolveSession(model.system, mode="frobnicate")

    def test_shift_property_returns_a_copy(self, make_model):
        model = make_model()
        shift = _shift_for(model)
        view = model.session.view(shift)
        exposed = view.shift
        exposed[0] = 999.0
        assert view.shift[0] != 999.0
        assert model.solver.shift is None

    def test_adopt_base_rejected_on_shifted_views(self, make_model):
        model = make_model("reuse")
        view = model.session.view(_shift_for(model))
        with pytest.raises(RuntimeError, match="unshifted"):
            view.adopt_base(None)

    def test_shifted_views_inherit_the_session_mode(self, make_model):
        model = make_model("auto")
        view = model.session.view(_shift_for(model))
        assert view.mode == "auto"
        assert view.effective_mode == model.solver.effective_mode
        assert view.effective_mode in ("reuse", "krylov")


class TestShiftedSolves:
    """``(S + G - i D) x = b`` must match a dense reference in every
    backend — this is the transient / control-loop system."""

    @pytest.mark.parametrize("mode", ["direct", "reuse", "krylov", "auto"])
    def test_solve_rhs_matches_dense(self, make_model, mode):
        model = make_model(mode)
        shift = _shift_for(model)
        view = model.session.view(shift)
        rhs = _rhs_for(model)
        for current in (0.0, 0.8, 2.5):
            dense = np.linalg.solve(
                np.diag(shift) + model.system.system_matrix(current).toarray(),
                rhs,
            )
            np.testing.assert_allclose(
                view.solve_rhs(current, rhs), dense, atol=_ATOL_K, rtol=0.0
            )

    @pytest.mark.parametrize("mode", ["direct", "reuse"])
    def test_multi_rhs_matches_dense(self, make_model, mode):
        model = make_model(mode)
        shift = _shift_for(model)
        view = model.session.view(shift)
        rhs = _rhs_for(model, columns=3)
        current = 1.2
        dense = np.linalg.solve(
            np.diag(shift) + model.system.system_matrix(current).toarray(),
            rhs,
        )
        np.testing.assert_allclose(
            view.solve_rhs(current, rhs), dense, atol=_ATOL_K, rtol=0.0
        )

    def test_rhs_length_validated(self, make_model):
        model = make_model()
        view = model.session.view(_shift_for(model))
        with pytest.raises(ValueError, match="rhs has length"):
            view.solve_rhs(0.0, np.ones(3))


class TestSharedFactorizations:
    def test_second_consumer_reuses_the_cached_factorization(self, make_model):
        model = make_model("direct")
        shift = _shift_for(model)
        rhs = _rhs_for(model)
        first = model.session.view(shift)
        first.solve_rhs(0.7, rhs)
        stats = model.solver.stats
        factorizations = stats.factorizations
        hits = stats.cache_hits
        # A "different" consumer asking for the same C / dt shift gets
        # the same view, so its solve is a pure cache hit.
        second = model.session.view(shift.copy())
        expected = second.solve_rhs(0.7, rhs)
        assert stats.factorizations == factorizations
        assert stats.cache_hits == hits + 1
        np.testing.assert_allclose(expected, first.solve_rhs(0.7, rhs))

    def test_tiny_cache_evicts_but_stays_correct(self, make_model):
        model = make_model("direct")
        shift = _shift_for(model, scale=3.0)
        view = model.session.view(shift, cache_size=1)
        stats = model.solver.stats
        evictions = stats.evictions
        rhs = _rhs_for(model)
        currents = (0.1, 0.4, 0.9)
        for current in currents:
            view.solve_rhs(current, rhs)
        assert stats.evictions >= evictions + 2
        # Re-solving an evicted current refactorizes and still agrees
        # with the dense reference.
        dense = np.linalg.solve(
            np.diag(shift) + model.system.system_matrix(0.1).toarray(), rhs
        )
        np.testing.assert_allclose(
            view.solve_rhs(0.1, rhs), dense, atol=_ATOL_K, rtol=0.0
        )


class TestSolveDiagonal:
    """``(S + G - diag(d)) x = b`` — the multi-pin generalization."""

    def _device_diagonal(self, model, fraction=0.6):
        d_diag = model.system.d_diagonal
        support = np.flatnonzero(d_diag)
        d = np.zeros(model.num_nodes)
        # Distinct per-entry "currents" over the Peltier support.
        d[support] = d_diag[support] * (
            fraction * np.linspace(0.4, 1.0, support.size)
        )
        return d

    @pytest.mark.parametrize("mode", ["direct", "reuse", "krylov"])
    def test_matches_dense(self, make_model, mode):
        model = make_model(mode)
        view = model.session.base_view()
        d = self._device_diagonal(model)
        rhs = model.system.p_base
        dense = np.linalg.solve(
            model.system.g_matrix.toarray() - np.diag(d), rhs
        )
        np.testing.assert_allclose(
            view.solve_diagonal(d, rhs), dense, atol=_ATOL_K, rtol=0.0
        )

    @pytest.mark.parametrize("mode", ["direct", "reuse"])
    def test_shifted_diagonal_matches_dense(self, make_model, mode):
        model = make_model(mode)
        shift = _shift_for(model)
        view = model.session.view(shift)
        d = self._device_diagonal(model)
        rhs = _rhs_for(model)
        dense = np.linalg.solve(
            np.diag(shift) + model.system.g_matrix.toarray() - np.diag(d),
            rhs,
        )
        np.testing.assert_allclose(
            view.solve_diagonal(d, rhs), dense, atol=_ATOL_K, rtol=0.0
        )

    @pytest.mark.parametrize("mode", ["direct", "reuse", "krylov"])
    def test_zero_diagonal_is_the_base_solve(self, make_model, mode):
        model = make_model(mode)
        view = model.session.base_view()
        rhs = model.system.p_base
        dense = np.linalg.solve(model.system.g_matrix.toarray(), rhs)
        np.testing.assert_allclose(
            view.solve_diagonal(np.zeros(model.num_nodes), rhs),
            dense, atol=_ATOL_K, rtol=0.0,
        )

    def test_off_support_diagonal_falls_back_to_direct(self, make_model):
        model = make_model("reuse")
        view = model.session.base_view()
        d = self._device_diagonal(model)
        # A nonzero entry outside the Peltier support (a silicon node)
        # breaks the Woodbury structure; the reuse backend must answer
        # it with a direct factorization, not silently wrong numbers.
        silicon = model.silicon_nodes[0]
        assert model.system.d_diagonal[silicon] == 0.0
        d[silicon] = 1.0e-3
        rhs = model.system.p_base
        factorizations = model.solver.stats.factorizations
        dense = np.linalg.solve(
            model.system.g_matrix.toarray() - np.diag(d), rhs
        )
        np.testing.assert_allclose(
            view.solve_diagonal(d, rhs), dense, atol=_ATOL_K, rtol=0.0
        )
        assert model.solver.stats.factorizations > factorizations

    def test_repeated_diagonal_hits_the_byte_keyed_cache(self, make_model):
        model = make_model("direct")
        view = model.session.base_view()
        d = self._device_diagonal(model)
        rhs = model.system.p_base
        first = view.solve_diagonal(d, rhs)
        stats = model.solver.stats
        factorizations = stats.factorizations
        hits = stats.cache_hits
        second = view.solve_diagonal(d.copy(), rhs)
        assert stats.factorizations == factorizations
        assert stats.cache_hits == hits + 1
        assert np.array_equal(first, second)

    def test_validation(self, make_model):
        model = make_model()
        view = model.session.base_view()
        with pytest.raises(ValueError, match="diagonal must have length"):
            view.solve_diagonal(np.ones(3), model.system.p_base)
        with pytest.raises(ValueError, match="rhs has length"):
            view.solve_diagonal(np.zeros(model.num_nodes), np.ones(3))


def _remote_solve(model, current):
    """Top-level helper so process-pool workers can unpickle it."""
    state = model.solve(current)
    return np.asarray(state.silicon_c)


class TestForkSafety:
    """Sessions must survive pickling (process pools, forked servers).

    ``SessionView.__getstate__`` drops the live ``splu`` handles and
    every factorization-derived cache; clones rebuild them lazily and
    must answer bit-identically to the warm original.
    """

    @pytest.mark.parametrize(
        "mode", ["direct", "reuse", "krylov", "cholesky", "mg", "auto"]
    )
    def test_warm_model_roundtrips_bit_identically(self, make_model, mode):
        import pickle

        model = make_model(mode)
        currents = (0.0, 0.8, 1.6)
        warm = [model.solve(i).silicon_c for i in currents]
        # The session is now carrying live factorizations and cached
        # solutions — exactly the state that cannot cross a fork.
        clone = pickle.loads(pickle.dumps(model))
        for current, reference in zip(currents, warm):
            np.testing.assert_array_equal(
                clone.solve(current).silicon_c, reference
            )

    def test_clone_caches_start_empty(self, make_model):
        import pickle

        model = make_model("reuse")
        model.solve(1.2)
        shift = _shift_for(model)
        model.session.view(shift).solve_rhs(0.0, _rhs_for(model))
        assert sum(model.session.cache_info().values()) > 0
        clone_session = pickle.loads(pickle.dumps(model)).session
        info = clone_session.cache_info()
        views = info.pop("views")
        assert views >= 1  # view bookkeeping survives, caches do not
        assert all(count == 0 for count in info.values())

    def test_warm_session_crosses_a_process_pool(self, make_model):
        from concurrent.futures import ProcessPoolExecutor

        model = make_model("reuse")
        current = 1.4
        local = _remote_solve(model, current)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_remote_solve, model, current).result()
        np.testing.assert_array_equal(remote, local)
