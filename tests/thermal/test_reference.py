"""The fine-grid reference solver."""

import numpy as np
import pytest

from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel
from repro.thermal.reference import ReferenceGridModel


@pytest.fixture(scope="module")
def small_reference(small_grid_mod, small_power_mod):
    return ReferenceGridModel(small_grid_mod, small_power_mod, refine=2)


@pytest.fixture(scope="module")
def small_grid_mod():
    return TileGrid(4, 4)


@pytest.fixture(scope="module")
def small_power_mod(small_grid_mod):
    power = np.full(16, 0.08)
    for tile in (5, 6, 9, 10):
        power[tile] = 0.55
    return power


class TestConstruction:
    def test_parameter_validation(self, small_grid_mod, small_power_mod):
        with pytest.raises(ValueError):
            ReferenceGridModel(small_grid_mod, small_power_mod, refine=0)
        with pytest.raises(ValueError):
            ReferenceGridModel(small_grid_mod, small_power_mod, die_slabs=0)
        with pytest.raises(ValueError):
            ReferenceGridModel(small_grid_mod, np.zeros(5))

    def test_cell_count_positive(self, small_reference):
        assert small_reference.num_cells > 16 * 4


class TestSolution:
    def test_finite_and_above_ambient(self, small_reference):
        temps = small_reference.tile_temperatures_c()
        assert np.all(np.isfinite(temps))
        assert np.all(temps >= small_reference.stack.ambient_c - 1e-9)

    def test_hot_block_is_hottest(self, small_reference):
        temps = small_reference.tile_temperatures_c()
        assert int(np.argmax(temps)) in (5, 6, 9, 10)

    def test_peak_helper(self, small_reference):
        temps = small_reference.tile_temperatures_c()
        assert small_reference.peak_tile_temperature_c() == pytest.approx(
            float(np.max(temps))
        )

    def test_solution_cached(self, small_reference):
        assert small_reference.solve() is small_reference.solve()

    def test_energy_balance(self, small_grid_mod, small_power_mod):
        """Mean sink-rise over ambient equals P * R_convec."""
        ref = ReferenceGridModel(small_grid_mod, small_power_mod, refine=1)
        total_power = float(np.sum(small_power_mod))
        theta = ref.solve()
        # area-weighted mean excess of the top slab = P * R_conv
        top = len(ref._layers) - 1
        dx, dy = ref._dx, ref._dy
        num = 0.0
        den = 0.0
        for y in range(dy.shape[0]):
            for x in range(dx.shape[0]):
                a = ref._index[top, y, x]
                if a < 0:
                    continue
                area = dx[x] * dy[y]
                num += area * (theta[a] - 318.15)
                den += area
        mean_excess = num / den
        expected = total_power * ref.stack.convection_resistance
        assert mean_excess == pytest.approx(expected, rel=1e-6)

    def test_refinement_converges(self, small_grid_mod, small_power_mod):
        """Peak changes less between refine 2->3 than 1->2."""
        peaks = [
            ReferenceGridModel(
                small_grid_mod, small_power_mod, refine=r
            ).peak_tile_temperature_c()
            for r in (1, 2, 3)
        ]
        assert abs(peaks[2] - peaks[1]) < abs(peaks[1] - peaks[0]) + 1e-6


class TestAgreementWithCompact:
    def test_small_package_agreement(self, small_grid_mod, small_power_mod):
        compact = PackageThermalModel(small_grid_mod, small_power_mod)
        reference = ReferenceGridModel(small_grid_mod, small_power_mod, refine=2)
        diff = compact.solve().silicon_c - reference.tile_temperatures_c()
        assert float(np.max(np.abs(diff))) < 2.5
