"""Tile-grid geometry and indexing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.geometry import TileGrid


class TestConstruction:
    def test_defaults_are_tec_sized(self):
        grid = TileGrid(12, 12)
        assert grid.tile_width == pytest.approx(0.5e-3)
        assert grid.tile_area == pytest.approx(0.25e-6)

    def test_paper_die(self):
        grid = TileGrid(12, 12)
        assert grid.width == pytest.approx(6e-3)
        assert grid.area == pytest.approx(36e-6)
        assert grid.num_tiles == 144

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TileGrid(0, 3)

    def test_rejects_nonpositive_tile(self):
        with pytest.raises(ValueError):
            TileGrid(2, 2, tile_width=0.0)


class TestIndexing:
    def test_flat_row_major(self):
        grid = TileGrid(3, 4)
        assert grid.flat_index(0, 0) == 0
        assert grid.flat_index(0, 3) == 3
        assert grid.flat_index(1, 0) == 4
        assert grid.flat_index(2, 3) == 11

    def test_row_col_inverse(self):
        grid = TileGrid(3, 4)
        for flat in range(grid.num_tiles):
            row, col = grid.row_col(flat)
            assert grid.flat_index(row, col) == flat

    def test_out_of_range(self):
        grid = TileGrid(2, 2)
        with pytest.raises(IndexError):
            grid.flat_index(2, 0)
        with pytest.raises(IndexError):
            grid.row_col(4)

    def test_tile_center(self):
        grid = TileGrid(2, 2, tile_width=1.0, tile_height=2.0)
        assert grid.tile_center(0, 0) == (0.5, 1.0)
        assert grid.tile_center(1, 1) == (1.5, 3.0)

    @given(st.integers(min_value=1, max_value=9), st.integers(min_value=1, max_value=9))
    @settings(max_examples=20, deadline=None)
    def test_property_iter_tiles_covers_exactly_once(self, rows, cols):
        grid = TileGrid(rows, cols)
        flats = [flat for flat, _, _ in grid.iter_tiles()]
        assert flats == list(range(rows * cols))


class TestNeighbors:
    def test_interior_has_four(self):
        grid = TileGrid(3, 3)
        assert len(list(grid.neighbors(1, 1))) == 4

    def test_corner_has_two(self):
        grid = TileGrid(3, 3)
        assert len(list(grid.neighbors(0, 0))) == 2

    def test_edge_has_three(self):
        grid = TileGrid(3, 3)
        assert len(list(grid.neighbors(0, 1))) == 3

    def test_lateral_pairs_count(self):
        # rows*(cols-1) east pairs + (rows-1)*cols south pairs
        grid = TileGrid(3, 4)
        pairs = list(grid.iter_lateral_pairs())
        assert len(pairs) == 3 * 3 + 2 * 4

    def test_lateral_pairs_unique(self):
        grid = TileGrid(4, 4)
        seen = set()
        for a, b, _, _ in grid.iter_lateral_pairs():
            key = (min(a, b), max(a, b))
            assert key not in seen
            seen.add(key)


class TestBoundary:
    def test_sides(self):
        grid = TileGrid(3, 4)
        assert grid.boundary_tiles("north") == [0, 1, 2, 3]
        assert grid.boundary_tiles("south") == [8, 9, 10, 11]
        assert grid.boundary_tiles("west") == [0, 4, 8]
        assert grid.boundary_tiles("east") == [3, 7, 11]

    def test_bad_side(self):
        with pytest.raises(ValueError):
            TileGrid(2, 2).boundary_tiles("up")


class TestToGrid:
    def test_reshape(self):
        grid = TileGrid(2, 3)
        out = grid.to_grid(np.arange(6))
        assert out.shape == (2, 3)
        assert out[1, 0] == 3

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            TileGrid(2, 3).to_grid(np.arange(5))
