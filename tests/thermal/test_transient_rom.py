"""Certified reduced-order transients against the full-order truth.

The contract under test is the one the certificate sells: for every
emitted state the true full-order error is at most the certified
bound, and the bound is at most the requested tolerance.  The
differentials here run ``rom="always"`` and ``rom="off"`` simulators
in lock-step over long horizons with time-varying power and compare
the *entire* temperature vector each step — not just the peak — so a
single bad node would fail the run.
"""

import numpy as np
import pytest

from repro.control.controllers import ConstantCurrentController, PiController
from repro.control.loop import ClosedLoopSimulator
from repro.control.sensors import SensorArray
from repro.linalg.mor import DEFAULT_ROM_TOL_K
from repro.thermal.transient import TransientSimulator


def _power_schedule(model):
    """A ramp-hold-drop tile power schedule exercising re-anchoring."""
    base = np.full(16, 0.8)

    def schedule(index, time_s):
        if index < 40:
            return base * (1.0 + 0.01 * index)
        if index < 120:
            return base * 1.4
        return base * 0.6

    return schedule


class TestLongHorizonDifferential:
    def test_bound_never_violated(self, small_deployed):
        """200 varying-power steps: true error <= certified bound <= tol."""
        schedule = _power_schedule(small_deployed)
        rom_sim = TransientSimulator(
            small_deployed, current=2.0, dt=1e-3, rom="always"
        )
        full_sim = TransientSimulator(
            small_deployed, current=2.0, dt=1e-3, rom="off"
        )
        assert rom_sim.rom_active and not full_sim.rom_active
        for index in range(200):
            power = schedule(index, rom_sim.time_s)
            rom_sim.step(power)
            full_sim.step(power)
            true_error = float(np.max(np.abs(rom_sim.theta_k - full_sim.theta_k)))
            bound = rom_sim.certified_error_k
            assert true_error <= bound + 1e-12
            assert bound <= DEFAULT_ROM_TOL_K + 1e-12

    def test_tight_basis_certifies_under_loose_tolerance(self, small_deployed):
        """A deliberately small basis still never lies: the certified
        bound may approach the (loose) tolerance, but always dominates
        the true error."""
        rom_sim = TransientSimulator(
            small_deployed, current=1.0, dt=1e-3,
            rom="always", rom_dim=8, rom_tol=0.5,
        )
        full_sim = TransientSimulator(
            small_deployed, current=1.0, dt=1e-3, rom="off"
        )
        schedule = _power_schedule(small_deployed)
        for index in range(150):
            power = schedule(index, rom_sim.time_s)
            rom_sim.step(power)
            full_sim.step(power)
            true_error = float(np.max(np.abs(rom_sim.theta_k - full_sim.theta_k)))
            assert true_error <= rom_sim.certified_error_k + 1e-12
            assert rom_sim.certified_error_k <= 0.5 + 1e-12

    def test_run_interface_matches(self, small_deployed):
        """The high-level ``run`` traces agree to the certified bound."""
        rom_sim = TransientSimulator(
            small_deployed, current=3.0, dt=1e-3, rom="always"
        )
        full_sim = TransientSimulator(
            small_deployed, current=3.0, dt=1e-3, rom="off"
        )
        rom_trace = rom_sim.run(100)
        full_trace = full_sim.run(100)
        gap = float(np.max(np.abs(rom_trace - full_trace)))
        assert gap <= rom_sim.certified_error_k + 1e-12
        stats = rom_sim.rom_stats()
        assert stats["rom_steps"] > 0
        # The point of the ROM: far fewer full-order columns than steps.
        assert stats["full_solve_columns"] < 100


class TestModeResolution:
    def test_auto_stays_full_order_on_small_models(self, small_deployed):
        sim = TransientSimulator(small_deployed, dt=1e-3, rom="auto")
        assert not sim.rom_active
        assert sim.certified_error_k == 0.0
        assert sim.rom_stats() is None

    def test_off_forces_full_order(self, small_deployed):
        sim = TransientSimulator(small_deployed, dt=1e-3, rom="off")
        assert not sim.rom_active

    def test_invalid_mode_rejected(self, small_deployed):
        with pytest.raises(ValueError):
            TransientSimulator(small_deployed, dt=1e-3, rom="maybe")


class TestReducedCache:
    def test_view_caches_by_parameters(self, small_deployed):
        a = TransientSimulator(small_deployed, dt=1e-3, rom="always")
        b = TransientSimulator(small_deployed, dt=1e-3, rom="always")
        # Same session, same dt, same ROM knobs -> one shared basis.
        assert a._rom is b._rom
        c = TransientSimulator(
            small_deployed, dt=1e-3, rom="always", rom_dim=12
        )
        assert c._rom is not a._rom
        assert c._rom.dim <= 12


class TestClosedLoopRom:
    @pytest.fixture()
    def sensors(self, small_deployed):
        tiles = set(small_deployed.tec_tiles)
        tiles.add(small_deployed.solve(0.0).peak_tile)
        return SensorArray(tiles, noise_std_c=0.0, quantization_c=0.0, seed=0)

    def test_differential_within_certified_bound(self, small_deployed, sensors):
        """Noise-free PI loops, ROM vs full: identical current commands
        and temperature traces within the certified error."""
        def build(mode):
            controller = PiController(
                setpoint_c=60.0, kp=0.8, ki=0.2, i_max=6.0
            )
            return ClosedLoopSimulator(
                small_deployed, controller, sensors,
                dt=5e-3, control_period=2e-2, rom=mode,
            )

        rom_result = build("always").run(160)
        full_result = build("off").run(160)
        np.testing.assert_array_equal(
            rom_result.current_a, full_result.current_a
        )
        gap = float(np.max(np.abs(
            rom_result.true_peak_c - full_result.true_peak_c
        )))
        assert rom_result.rom is not None
        assert gap <= rom_result.rom["certified_error_k"] + 1e-12
        assert rom_result.rom["certified_error_k"] <= DEFAULT_ROM_TOL_K + 1e-12

    def test_result_stats_populated(self, small_deployed, sensors):
        loop = ClosedLoopSimulator(
            small_deployed, ConstantCurrentController(2.0), sensors,
            dt=5e-3, rom="always",
        )
        result = loop.run(30)
        assert result.steps == 30
        assert result.wall_s > 0.0
        assert result.rom["dim"] >= 1
        assert 0 < result.rom["rom_steps"] <= 30

    def test_rom_off_reports_none(self, small_deployed, sensors):
        loop = ClosedLoopSimulator(
            small_deployed, ConstantCurrentController(2.0), sensors,
            dt=5e-3, rom="off",
        )
        result = loop.run(10)
        assert result.rom is None
        assert result.steps == 10
        assert result.wall_s > 0.0
