"""Properties of the ``auto`` backend heuristic.

:func:`~repro.thermal.session.select_backend` decides between the
blocked-Woodbury ``reuse`` backend, the iterative ``krylov`` backend
and the geometric-multigrid ``mg`` backend from
``(num_nodes, support_size)`` alone.  Contracts:

* it always returns a member of ``SOLVER_MODES`` (and never the
  explicit-only ``direct``/``cholesky`` backends — those are opt-in);
* at a fixed support, growing the grid can only move the decision
  *up* the ``krylov < reuse < mg`` ladder: the support threshold
  ``max(64, 4 sqrt(n))`` is nondecreasing in ``n`` (krylov -> reuse
  flips at most once), and every grid at or past
  ``MG_NODE_CROSSOVER`` nodes goes multigrid regardless of support;
* the 128x128-package crossover is pinned: 65 804 nodes put the
  threshold at ``4 * sqrt(65804) ~ 1026``, so a 513-TEC deployment
  (support 1026) still reuses while 514 TECs (support 1028) go
  iterative — and 65 804 sits safely below the 150 000-node mg
  crossover, so the 128x128 bench column keeps its historical
  backends while the 256x256 column (262 408 nodes) goes mg.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.thermal.session import (
    AUTO_SUPPORT_COEFF,
    AUTO_SUPPORT_FLOOR,
    MG_NODE_CROSSOVER,
    SOLVER_MODES,
    select_backend,
)

_NODES = st.integers(min_value=1, max_value=10**7)
_SMALL_NODES = st.integers(min_value=1, max_value=MG_NODE_CROSSOVER - 1)
_SUPPORT = st.integers(min_value=0, max_value=10**5)

#: Position on the "grid size pushes the choice this way" ladder.
_RANK = {"krylov": 0, "reuse": 1, "mg": 2}


class TestSelectBackendProperties:
    @given(num_nodes=_NODES, support=_SUPPORT)
    def test_result_is_a_solver_mode(self, num_nodes, support):
        backend = select_backend(num_nodes, support)
        assert backend in SOLVER_MODES
        assert backend in ("reuse", "krylov", "mg")

    @given(num_nodes=_SMALL_NODES, support=st.integers(min_value=0, max_value=64))
    def test_small_supports_always_reuse_below_mg_crossover(
        self, num_nodes, support
    ):
        """Below the floor the dense update wins on any sub-chiplet grid."""
        assert AUTO_SUPPORT_FLOOR == 64
        assert select_backend(num_nodes, support) == "reuse"

    @given(num_nodes=_NODES, support=_SUPPORT)
    def test_chiplet_scale_grids_always_go_mg(self, num_nodes, support):
        """At or past the node crossover the support is irrelevant:
        the hierarchy's O(n) memory is what matters, not the Woodbury
        rank."""
        if num_nodes >= MG_NODE_CROSSOVER:
            assert select_backend(num_nodes, support) == "mg"
        else:
            assert select_backend(num_nodes, support) != "mg"

    @given(
        small=_NODES, large=_NODES, support=_SUPPORT
    )
    def test_monotone_in_num_nodes_at_fixed_support(
        self, small, large, support
    ):
        """Growing the grid only climbs the krylov -> reuse -> mg
        ladder, never descends: once a support is cheap on a small
        grid it stays cheap on every larger one, until the grid itself
        is the bottleneck and multigrid takes over."""
        if small > large:
            small, large = large, small
        rank_small = _RANK[select_backend(small, support)]
        rank_large = _RANK[select_backend(large, support)]
        assert rank_small <= rank_large

    @given(
        num_nodes=_SMALL_NODES, small=_SUPPORT, large=_SUPPORT
    )
    def test_monotone_in_support_at_fixed_grid(self, num_nodes, small, large):
        """Shrinking the deployment never switches reuse -> krylov."""
        if small > large:
            small, large = large, small
        if select_backend(num_nodes, large) == "reuse":
            assert select_backend(num_nodes, small) == "reuse"


class TestCrossoverRegression:
    """The 128x128 bench column sits just under the auto threshold."""

    _NODES_128 = 65804  # nodes of the bench's 128x128 package network
    _NODES_256 = 262408  # nodes of the bench's 256x256 package network

    def test_threshold_follows_sqrt_n(self):
        limit = max(
            AUTO_SUPPORT_FLOOR,
            AUTO_SUPPORT_COEFF * self._NODES_128 ** 0.5,
        )
        assert 1026 < limit < 1027

    def test_128_grid_crossover(self):
        assert select_backend(self._NODES_128, 1026) == "reuse"
        assert select_backend(self._NODES_128, 1028) == "krylov"

    def test_128_grid_stays_below_mg_crossover(self):
        """Adding the mg tier must not disturb the historical 128x128
        reuse/krylov behaviour."""
        assert self._NODES_128 < MG_NODE_CROSSOVER

    def test_256_grid_goes_mg(self):
        assert self._NODES_256 >= MG_NODE_CROSSOVER
        assert select_backend(self._NODES_256, 0) == "mg"
        assert select_backend(self._NODES_256, 4096) == "mg"

    def test_mg_crossover_boundary(self):
        assert select_backend(MG_NODE_CROSSOVER, 0) == "mg"
        assert select_backend(MG_NODE_CROSSOVER - 1, 0) == "reuse"
