"""Properties of the ``auto`` backend heuristic.

:func:`~repro.thermal.session.select_backend` decides between the
blocked-Woodbury ``reuse`` backend and the iterative ``krylov``
backend from ``(num_nodes, support_size)`` alone.  Three contracts:

* it always returns a member of ``SOLVER_MODES`` (and never the
  explicit-only ``direct``/``cholesky`` backends — those are opt-in);
* at a fixed support, growing the grid can only move the decision
  *toward* ``reuse`` (the support threshold ``max(64, 4 sqrt(n))`` is
  nondecreasing in ``n``), i.e. the choice flips at most once and
  only in the krylov -> reuse direction;
* the 128x128-package crossover is pinned: 65 804 nodes put the
  threshold at ``4 * sqrt(65804) ~ 1026``, so a 513-TEC deployment
  (support 1026) still reuses while 514 TECs (support 1028) go
  iterative.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.thermal.session import (
    AUTO_SUPPORT_COEFF,
    AUTO_SUPPORT_FLOOR,
    SOLVER_MODES,
    select_backend,
)

_NODES = st.integers(min_value=1, max_value=10**7)
_SUPPORT = st.integers(min_value=0, max_value=10**5)


class TestSelectBackendProperties:
    @given(num_nodes=_NODES, support=_SUPPORT)
    def test_result_is_a_solver_mode(self, num_nodes, support):
        backend = select_backend(num_nodes, support)
        assert backend in SOLVER_MODES
        assert backend in ("reuse", "krylov")

    @given(num_nodes=_NODES, support=st.integers(min_value=0, max_value=64))
    def test_small_supports_always_reuse(self, num_nodes, support):
        """Below the floor the dense update wins on any grid."""
        assert AUTO_SUPPORT_FLOOR == 64
        assert select_backend(num_nodes, support) == "reuse"

    @given(
        small=_NODES, large=_NODES, support=_SUPPORT
    )
    def test_monotone_in_num_nodes_at_fixed_support(
        self, small, large, support
    ):
        """Growing the grid can only flip krylov -> reuse, never the
        reverse: once a support is cheap on a small grid it stays
        cheap on every larger one."""
        if small > large:
            small, large = large, small
        if select_backend(small, support) == "reuse":
            assert select_backend(large, support) == "reuse"

    @given(
        num_nodes=_NODES, small=_SUPPORT, large=_SUPPORT
    )
    def test_monotone_in_support_at_fixed_grid(self, num_nodes, small, large):
        """Shrinking the deployment never switches reuse -> krylov."""
        if small > large:
            small, large = large, small
        if select_backend(num_nodes, large) == "reuse":
            assert select_backend(num_nodes, small) == "reuse"


class TestCrossoverRegression:
    """The 128x128 bench column sits just under the auto threshold."""

    _NODES_128 = 65804  # nodes of the bench's 128x128 package network

    def test_threshold_follows_sqrt_n(self):
        limit = max(
            AUTO_SUPPORT_FLOOR,
            AUTO_SUPPORT_COEFF * self._NODES_128 ** 0.5,
        )
        assert 1026 < limit < 1027

    def test_128_grid_crossover(self):
        assert select_backend(self._NODES_128, 1026) == "reuse"
        assert select_backend(self._NODES_128, 1028) == "krylov"
