"""Differential tests of the batched solve kernel.

:meth:`~repro.thermal.session.SessionView.solve_batch` answers ``k``
solve requests as stacked multi-RHS blocks; every backend must agree
with its own serial path on randomized package networks.  Two
guarantees are pinned here:

* **cross-path agreement** — for every backend in ``SOLVER_MODES``,
  ``solve_batch(currents)`` matches column-by-column serial
  ``solve(current)`` calls to 1e-9 K (the batched default-loads path
  actually *is* the serial path, so it agrees bitwise; the explicit
  ``loads`` path regroups the algebra and is held to the tolerance);
* **edge cases** — an empty batch returns a well-formed ``(n, 0)``
  result, and a single-column batch matches a plain solve exactly.

The random instances mirror ``tests/thermal/test_differential.py``:
grids 2x2 through 4x4 with random power maps and TEC deployments, and
probe currents spanning passive through near-runaway.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel
from repro.thermal.session import SOLVER_MODES, BatchResult

_ATOL_K = 1e-9

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def _instances(draw):
    """A random (grid, power map, deployment) triple."""
    rows = draw(st.integers(min_value=2, max_value=4))
    cols = draw(st.integers(min_value=2, max_value=4))
    tiles = rows * cols
    power = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.8),
            min_size=tiles,
            max_size=tiles,
        )
    )
    deployment = draw(
        st.sets(
            st.integers(min_value=0, max_value=tiles - 1),
            min_size=1,
            max_size=min(6, tiles),
        )
    )
    return rows, cols, np.array(power), tuple(sorted(deployment))


def _model(instance, mode):
    rows, cols, power, deployment = instance
    return PackageThermalModel(
        TileGrid(rows, cols), power, tec_tiles=deployment, solver_mode=mode
    )


def _currents(model):
    """Probe currents with a deliberate duplicate to exercise grouping."""
    lam = model.runaway_current().value
    return [0.0, 0.3 * lam, 0.8 * lam, 0.3 * lam]


class TestBatchMatchesSerial:
    """solve_batch vs one-at-a-time solves, for every backend."""

    @pytest.mark.parametrize("mode", SOLVER_MODES)
    @given(instance=_instances())
    @_settings
    def test_default_loads_batch_is_bitwise_serial(self, mode, instance):
        batched_model = _model(instance, mode)
        serial_model = _model(instance, mode)
        currents = _currents(batched_model)
        batch = batched_model.solver.solve_batch(currents)
        assert isinstance(batch, BatchResult)
        assert len(batch) == len(currents)
        assert batch.temperatures.shape == (batched_model.num_nodes,
                                            len(currents))
        for j, current in enumerate(currents):
            serial = serial_model.solver.solve(current)
            assert np.array_equal(batch.temperatures[:, j], serial)
            assert batch.columns[j].index == j
            assert batch.columns[j].current == float(current)
            assert batch.columns[j].peak_k == float(serial.max())

    @pytest.mark.parametrize("mode", SOLVER_MODES)
    @given(instance=_instances())
    @_settings
    def test_explicit_loads_batch_matches_serial_rhs(self, mode, instance):
        model = _model(instance, mode)
        currents = _currents(model)
        rng = np.random.default_rng(1234)
        loads = rng.uniform(0.0, 1.0, size=(model.num_nodes, len(currents)))
        batch = model.solver.solve_batch(currents, loads=loads)
        for j, current in enumerate(currents):
            serial = model.solver.solve_rhs(current, loads[:, j])
            np.testing.assert_allclose(
                batch.temperatures[:, j], serial, atol=_ATOL_K, rtol=0.0
            )

    @given(instance=_instances())
    @_settings
    def test_backends_agree_on_the_same_batch(self, instance):
        reference = None
        currents = _currents(_model(instance, "direct"))
        for mode in SOLVER_MODES:
            batch = _model(instance, mode).solver.solve_batch(currents)
            if reference is None:
                reference = batch.temperatures
            else:
                np.testing.assert_allclose(
                    batch.temperatures, reference, atol=1e-6, rtol=0.0
                )

    @given(instance=_instances())
    @_settings
    def test_duplicate_currents_share_one_group(self, instance):
        """Explicit-loads batches group equal currents into one block."""
        model = _model(instance, "reuse")
        currents = _currents(model)  # contains 0.3*lam twice
        loads = np.tile(
            np.ones(model.num_nodes)[:, None], (1, len(currents))
        )
        batch = model.solver.solve_batch(currents, loads=loads)
        assert [column.grouped for column in batch.columns] == [1, 2, 1, 2]
        assert np.array_equal(
            batch.temperatures[:, 1], batch.temperatures[:, 3]
        )

    @given(instance=_instances())
    @_settings
    def test_duplicate_currents_hit_the_solution_cache(self, instance):
        """Default-loads batches reuse the solution of a repeated current."""
        model = _model(instance, "reuse")
        currents = _currents(model)  # contains 0.3*lam twice
        batch = model.solver.solve_batch(currents)
        assert not batch.columns[1].solution_hit
        assert batch.columns[3].solution_hit


class TestBatchEdgeCases:
    @pytest.mark.parametrize("mode", SOLVER_MODES)
    def test_empty_batch(self, small_grid, small_power, mode):
        model = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6), solver_mode=mode
        )
        batch = model.solver.solve_batch([])
        assert len(batch) == 0
        assert batch.temperatures.shape == (model.num_nodes, 0)
        assert not batch.columns
        assert batch.peaks_k.shape == (0,)

    @pytest.mark.parametrize("mode", SOLVER_MODES)
    def test_single_column_matches_plain_solve(
        self, small_grid, small_power, mode
    ):
        model = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6), solver_mode=mode
        )
        other = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6), solver_mode=mode
        )
        current = 0.5 * model.runaway_current().value
        batch = model.solver.solve_batch([current])
        assert np.array_equal(
            batch.temperatures[:, 0], other.solver.solve(current)
        )
        assert batch.columns[0].grouped == 1

    def test_loads_shape_is_validated(self, small_grid, small_power):
        model = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6)
        )
        with pytest.raises(ValueError, match="loads must have shape"):
            model.solver.solve_batch(
                [0.1, 0.2], loads=np.ones((model.num_nodes, 3))
            )

    def test_model_level_batch_rejects_negative_current(
        self, small_grid, small_power
    ):
        model = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6)
        )
        with pytest.raises(ValueError, match="current must be >= 0"):
            model.solve_batch([0.1, -0.2])

    def test_model_level_batch_matches_states(self, small_grid, small_power):
        model = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6)
        )
        other = PackageThermalModel(
            small_grid, small_power, tec_tiles=(5, 6)
        )
        currents = [0.0, 0.4 * model.runaway_current().value]
        states = model.solve_batch(currents)
        assert [state.current for state in states] == currents
        for state, current in zip(states, currents):
            assert np.array_equal(
                state.theta_k, other.solve(current).theta_k
            )
