"""Compact-vs-reference validation harness (the < 1.5 C experiment)."""

import numpy as np
import pytest

from repro.thermal.validation import validate_against_reference


class TestValidationReport:
    @pytest.fixture(scope="class")
    def report(self, alpha_model):
        return validate_against_reference(alpha_model, refine=1)

    def test_metrics_consistent(self, report):
        diff = report.compact_c - report.reference_c
        assert report.worst_abs_diff_c == pytest.approx(float(np.max(np.abs(diff))))
        assert report.mean_abs_diff_c == pytest.approx(float(np.mean(np.abs(diff))))
        assert report.peak_diff_c == pytest.approx(
            float(np.max(report.compact_c) - np.max(report.reference_c))
        )

    def test_within_helper(self, report):
        assert report.within(report.worst_abs_diff_c + 0.1)
        assert not report.within(report.worst_abs_diff_c - 1e-9)

    def test_paper_claim_at_matched_granularity(self, report):
        """The Section VI claim: worst-case difference below 1.5 C."""
        assert report.worst_abs_diff_c < 1.5

    def test_deployed_model_validates_tec_free_sibling(self, alpha_greedy):
        report = validate_against_reference(alpha_greedy.model, refine=1)
        assert report.worst_abs_diff_c < 1.5


class TestFinerGrids:
    def test_refine2_still_close(self, alpha_model):
        report = validate_against_reference(alpha_model, refine=2)
        assert report.worst_abs_diff_c < 1.5
