"""Material records and conductance arithmetic."""

import pytest

from repro.thermal.materials import (
    COPPER,
    SILICON,
    TIM,
    Material,
    material_by_name,
)


class TestMaterial:
    def test_conductance_formula(self):
        mat = Material("x", thermal_conductivity=100.0, volumetric_heat_capacity=1.0)
        # k A / L = 100 * 2e-6 / 1e-3
        assert mat.conductance(2e-6, 1e-3) == pytest.approx(0.2)

    def test_conductance_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SILICON.conductance(0.0, 1e-3)
        with pytest.raises(ValueError):
            SILICON.conductance(1e-6, 0.0)

    def test_rejects_nonpositive_conductivity(self):
        with pytest.raises(ValueError):
            Material("bad", thermal_conductivity=0.0, volumetric_heat_capacity=1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            SILICON.thermal_conductivity = 1.0


class TestDatabase:
    def test_hotspot_defaults(self):
        assert SILICON.thermal_conductivity == pytest.approx(100.0)
        assert COPPER.thermal_conductivity == pytest.approx(400.0)
        assert TIM.thermal_conductivity == pytest.approx(4.0)

    def test_lookup(self):
        assert material_by_name("silicon") is SILICON

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown material"):
            material_by_name("unobtainium")
