"""Temperature-dependent silicon conductivity."""

import numpy as np
import pytest

from repro.thermal.model import PackageThermalModel
from repro.thermal.nonlinear import (
    NonlinearSteadyState,
    silicon_conductivity_scale,
)


class TestScaleFunction:
    def test_unity_at_reference(self):
        assert silicon_conductivity_scale(300.0) == pytest.approx(1.0)

    def test_hotter_is_less_conductive(self):
        assert silicon_conductivity_scale(360.0) < 1.0

    def test_power_law(self):
        assert silicon_conductivity_scale(600.0, exponent=1.0) == pytest.approx(0.5)

    def test_array_input(self):
        scales = silicon_conductivity_scale(np.array([300.0, 360.0]))
        assert scales.shape == (2,)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            silicon_conductivity_scale(0.0)


class TestModelScaleParameter:
    def test_uniform_scale_one_is_identity(self, small_grid, small_power):
        base = PackageThermalModel(small_grid, small_power)
        scaled = PackageThermalModel(
            small_grid, small_power, die_conductivity_scale=np.ones(16)
        )
        assert np.allclose(
            base.solve().silicon_c, scaled.solve().silicon_c, atol=1e-12
        )

    def test_lower_conductivity_raises_peak(self, small_grid, small_power):
        base = PackageThermalModel(small_grid, small_power)
        degraded = PackageThermalModel(
            small_grid, small_power, die_conductivity_scale=np.full(16, 0.5)
        )
        assert degraded.solve().peak_silicon_c > base.solve().peak_silicon_c

    def test_validation(self, small_grid, small_power):
        with pytest.raises(ValueError, match="length"):
            PackageThermalModel(
                small_grid, small_power, die_conductivity_scale=np.ones(3)
            )
        with pytest.raises(ValueError, match="positive"):
            PackageThermalModel(
                small_grid, small_power, die_conductivity_scale=np.zeros(16)
            )

    def test_with_tec_tiles_preserves_scale(self, small_grid, small_power):
        scale = np.linspace(0.8, 1.2, 16)
        base = PackageThermalModel(
            small_grid, small_power, die_conductivity_scale=scale
        )
        sibling = base.with_tec_tiles((5,))
        assert np.array_equal(sibling._die_k_scale, scale)


class TestNonlinearSolve:
    def test_exponent_zero_recovers_linear(self, small_model):
        result = NonlinearSteadyState(small_model, exponent=0.0).solve()
        assert result.iterations == 0
        assert result.peak_shift_c == 0.0

    def test_converges(self, small_model):
        result = NonlinearSteadyState(small_model).solve()
        assert result.converged
        assert result.iterations <= 25

    def test_nonlinearity_heats_the_hotspot(self, small_model):
        """k falls with T, so the nonlinear hot spot is hotter."""
        result = NonlinearSteadyState(small_model).solve()
        assert result.peak_shift_c > 0.0

    def test_shift_is_modest_on_alpha(self, alpha_model):
        """The correction is one to two degrees on the Alpha chip —
        visible but far smaller than the cooling swings under study,
        supporting the paper's linear model."""
        result = NonlinearSteadyState(alpha_model).solve()
        assert result.converged
        assert 0.5 < result.peak_shift_c < 3.0

    def test_scales_below_unity_when_hot(self, small_model):
        result = NonlinearSteadyState(small_model).solve()
        low, high = result.scale_range
        assert low < high < 1.0  # everything runs above 300 K

    def test_fixed_point_property(self, small_model):
        """At convergence, re-evaluating the scale law at the final
        field reproduces the embedded scales."""
        result = NonlinearSteadyState(small_model).solve(tolerance_k=1e-9)
        expected = silicon_conductivity_scale(result.state.silicon_k)
        assert np.allclose(result.model._die_k_scale, expected, atol=1e-6)

    def test_works_with_tecs_and_current(self, small_deployed):
        result = NonlinearSteadyState(small_deployed).solve(current=4.0)
        assert result.converged
        linear = small_deployed.solve(4.0).peak_silicon_c
        assert result.state.peak_silicon_c > linear

    def test_damping_converges_too(self, small_model):
        result = NonlinearSteadyState(small_model, damping=0.5).solve()
        assert result.converged

    def test_invalid_parameters(self, small_model):
        with pytest.raises(ValueError):
            NonlinearSteadyState(small_model, exponent=-1.0)
        with pytest.raises(ValueError):
            NonlinearSteadyState(small_model, damping=0.0)
