"""Differential tests of the independent solve paths.

Four implementations answer ``(G - i D) theta = p(i)`` for a package
model: the per-current sparse-LU engine (``mode="direct"``), the
Woodbury factorization-reuse engine (``mode="reuse"``), the
G-preconditioned iterative backend (``mode="krylov"``, with ``auto``
dispatching between the last two), and a dense ``numpy.linalg.solve``
on the assembled matrices.  They share no code past assembly, so
agreement on randomized floorplans and deployments is strong evidence
against a defect in any one path.

Tolerance: temperatures are absolute Kelvin values of order 3e2 and
the nodal systems are well conditioned (cond(G) ~ 1e4 for these
package networks), so double-precision factorizations agree to ~1e-9 K
relative; ``atol=1e-6`` Kelvin leaves three orders of margin while
remaining far below any physically meaningful difference.

Blueprint replay, by contrast, promises *bitwise* equality: replaying
a recorded :class:`~repro.thermal.assembly.NetworkBlueprint` emits the
exact builder-call stream of a fresh build, so the assembled arrays
must be identical — not merely close — on any grid and deployment,
not just the Alpha fixture it was introduced with.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel

_ATOL_K = 1e-6

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def _instances(draw):
    """A random (grid, power map, deployment) triple."""
    rows = draw(st.integers(min_value=2, max_value=4))
    cols = draw(st.integers(min_value=2, max_value=4))
    tiles = rows * cols
    power = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.8),
            min_size=tiles,
            max_size=tiles,
        )
    )
    deployment = draw(
        st.sets(
            st.integers(min_value=0, max_value=tiles - 1),
            min_size=1,
            max_size=min(6, tiles),
        )
    )
    return rows, cols, np.array(power), tuple(sorted(deployment))


def _currents(model):
    """Probe currents: passive, mid-range, and near-runaway."""
    lam = model.runaway_current().value
    return [0.0, 0.3 * lam, 0.8 * lam]


class TestSolverModesAgree:
    @given(_instances())
    @_settings
    def test_direct_vs_reuse_vs_dense(self, instance):
        rows, cols, power, deployment = instance
        grid = TileGrid(rows, cols)
        direct = PackageThermalModel(
            grid, power, tec_tiles=deployment, solver_mode="direct"
        )
        reuse = PackageThermalModel(
            grid, power, tec_tiles=deployment, solver_mode="reuse"
        )
        for current in _currents(direct):
            theta_direct = direct.solve(current).theta_k
            theta_reuse = reuse.solve(current).theta_k
            system = direct.system
            theta_dense = np.linalg.solve(
                system.system_matrix(current).toarray(),
                system.power_vector(current),
            )
            np.testing.assert_allclose(
                theta_reuse, theta_direct, atol=_ATOL_K, rtol=0.0
            )
            np.testing.assert_allclose(
                theta_direct, theta_dense, atol=_ATOL_K, rtol=0.0
            )

    @given(_instances())
    @_settings
    def test_krylov_and_auto_vs_dense(self, instance):
        """The iterative backend (and ``auto`` dispatch) must agree
        with the dense reference on random floorplans too."""
        rows, cols, power, deployment = instance
        grid = TileGrid(rows, cols)
        krylov = PackageThermalModel(
            grid, power, tec_tiles=deployment, solver_mode="krylov"
        )
        auto = PackageThermalModel(
            grid, power, tec_tiles=deployment, solver_mode="auto"
        )
        for current in _currents(krylov):
            system = krylov.system
            theta_dense = np.linalg.solve(
                system.system_matrix(current).toarray(),
                system.power_vector(current),
            )
            np.testing.assert_allclose(
                krylov.solve(current).theta_k, theta_dense,
                atol=_ATOL_K, rtol=0.0,
            )
            np.testing.assert_allclose(
                auto.solve(current).theta_k, theta_dense,
                atol=_ATOL_K, rtol=0.0,
            )

    @given(_instances())
    @_settings
    def test_krylov_multi_rhs_matches_dense(self, instance):
        rows, cols, power, deployment = instance
        grid = TileGrid(rows, cols)
        model = PackageThermalModel(
            grid, power, tec_tiles=deployment, solver_mode="krylov"
        )
        current = 0.5 * model.runaway_current().value
        rhs = np.eye(model.num_nodes)[:, :3]
        batched = model.solver.solve_rhs(current, rhs)
        dense = np.linalg.solve(
            model.system.system_matrix(current).toarray(), rhs
        )
        np.testing.assert_allclose(batched, dense, atol=_ATOL_K, rtol=0.0)

    @given(_instances())
    @_settings
    def test_multi_rhs_matches_dense(self, instance):
        """solve_rhs batches must agree with dense column solves."""
        rows, cols, power, deployment = instance
        grid = TileGrid(rows, cols)
        model = PackageThermalModel(
            grid, power, tec_tiles=deployment, solver_mode="reuse"
        )
        current = 0.5 * model.runaway_current().value
        rhs = np.eye(model.num_nodes)[:, :3]
        batched = model.solver.solve_rhs(current, rhs)
        dense = np.linalg.solve(
            model.system.system_matrix(current).toarray(), rhs
        )
        np.testing.assert_allclose(batched, dense, atol=_ATOL_K, rtol=0.0)


class TestBlueprintReplayBitEquality:
    @given(_instances())
    @_settings
    def test_replay_matches_fresh_assembly_bitwise(self, instance):
        rows, cols, power, deployment = instance
        grid = TileGrid(rows, cols)
        blueprint = PackageThermalModel(grid, power).network_blueprint()
        replayed = PackageThermalModel(
            grid, power, tec_tiles=deployment, blueprint=blueprint
        )
        fresh = PackageThermalModel(grid, power, tec_tiles=deployment)

        a, b = replayed.system, fresh.system
        assert np.array_equal(a.g_matrix.indptr, b.g_matrix.indptr)
        assert np.array_equal(a.g_matrix.indices, b.g_matrix.indices)
        assert np.array_equal(a.g_matrix.data, b.g_matrix.data)
        assert np.array_equal(a.d_diagonal, b.d_diagonal)
        assert np.array_equal(a.p_base, b.p_base)
        assert np.array_equal(a.joule, b.joule)

    @given(_instances())
    @_settings
    def test_replayed_stamps_map_to_same_nodes(self, instance):
        rows, cols, power, deployment = instance
        grid = TileGrid(rows, cols)
        blueprint = PackageThermalModel(grid, power).network_blueprint()
        replayed = PackageThermalModel(
            grid, power, tec_tiles=deployment, blueprint=blueprint
        )
        fresh = PackageThermalModel(grid, power, tec_tiles=deployment)
        assert replayed.hot_nodes == fresh.hot_nodes
        assert replayed.cold_nodes == fresh.cold_nodes
        assert replayed.silicon_nodes == fresh.silicon_nodes


class TestScaleReplayBitEquality:
    """Die-conductivity scale replay — the nonlinear k(T) iteration's
    fast path — must be bitwise identical to a from-scratch build at
    the same scale, on any grid and deployment."""

    @given(_instances(), st.floats(min_value=0.5, max_value=1.5))
    @_settings
    def test_with_scale_matches_fresh_build_bitwise(self, instance, scale):
        rows, cols, power, deployment = instance
        grid = TileGrid(rows, cols)
        # A non-uniform per-tile scale field around the drawn level.
        scale_map = scale * np.linspace(0.9, 1.1, grid.num_tiles)
        base = PackageThermalModel(grid, power, tec_tiles=deployment)
        replayed = base.with_die_conductivity_scale(scale_map)
        fresh = PackageThermalModel(
            grid, power, tec_tiles=deployment, die_conductivity_scale=scale_map
        )

        a, b = replayed.system, fresh.system
        assert np.array_equal(a.g_matrix.indptr, b.g_matrix.indptr)
        assert np.array_equal(a.g_matrix.indices, b.g_matrix.indices)
        assert np.array_equal(a.g_matrix.data, b.g_matrix.data)
        assert np.array_equal(a.d_diagonal, b.d_diagonal)
        assert np.array_equal(a.p_base, b.p_base)
        assert np.array_equal(a.joule, b.joule)

    @given(_instances(), st.floats(min_value=0.5, max_value=1.5))
    @_settings
    def test_scaled_solve_matches_dense(self, instance, scale):
        rows, cols, power, deployment = instance
        grid = TileGrid(rows, cols)
        scale_map = scale * np.linspace(0.9, 1.1, grid.num_tiles)
        model = PackageThermalModel(
            grid, power, tec_tiles=deployment
        ).with_die_conductivity_scale(scale_map)
        current = _currents(model)[1]
        system = model.system
        theta_dense = np.linalg.solve(
            system.system_matrix(current).toarray(),
            system.power_vector(current),
        )
        np.testing.assert_allclose(
            model.solve(current).theta_k, theta_dense, atol=_ATOL_K, rtol=0.0
        )
