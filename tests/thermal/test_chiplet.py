"""2.5D chiplet layouts: composite grids, models, and the reference.

Three pillars of the chiplet generalization:

* ``CompositeGrid`` indexing invariants as hypothesis properties —
  every downstream consumer (power maps, deployments, lattice
  extraction) leans on the global-flat <-> (chiplet, row, col) <->
  bounding-lattice correspondences;
* the differential gate: ``CompositeThermalModel`` against the
  independently assembled ``ReferenceChipletModel`` to <= 1e-6 K;
* the non-regression identity: a single-die ``ChipletLayout`` routed
  through ``thermal_model_for_layout`` produces the *bitwise* same
  blueprint and matrices as today's single-die path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import CoolingSystemProblem
from repro.power.maps import compose_chiplet_power
from repro.thermal.chiplet import (
    ChipletLayout,
    ChipletSpec,
    InterposerSpec,
    demo_two_chiplet_layout,
    grown_default_stack,
    layout_from_plain,
)
from repro.thermal.geometry import CompositeGrid, TileGrid
from repro.thermal.model import (
    CompositeThermalModel,
    PackageThermalModel,
    thermal_model_for_layout,
)
from repro.thermal.reference import ReferenceChipletModel


def _row_of_chiplets(draw):
    """Hypothesis helper: 1-3 non-overlapping grids left to right."""
    count = draw(st.integers(min_value=1, max_value=3))
    grids, origins = [], []
    col = 0
    for index in range(count):
        rows = draw(st.integers(min_value=1, max_value=4))
        cols = draw(st.integers(min_value=1, max_value=4))
        row0 = draw(st.integers(min_value=0, max_value=2))
        gap = draw(st.integers(min_value=0, max_value=2)) if index else 0
        col += gap
        grids.append(TileGrid(rows, cols))
        origins.append((row0, col))
        col += cols
    return CompositeGrid(grids=tuple(grids), origins=tuple(origins))


@st.composite
def _composites(draw):
    return _row_of_chiplets(draw)


class TestCompositeGridProperties:
    @given(composite=_composites())
    @settings(max_examples=40, deadline=None)
    def test_global_flat_round_trip(self, composite):
        for flat in range(composite.num_tiles):
            chiplet, row, col = composite.locate(flat)
            assert composite.global_index(chiplet, row, col) == flat
            assert composite.chiplet_of(flat) == chiplet

    @given(composite=_composites())
    @settings(max_examples=40, deadline=None)
    def test_blocks_are_contiguous_and_partition(self, composite):
        stops = []
        for chiplet in range(composite.num_chiplets):
            block = composite.block_slice(chiplet)
            assert block.stop - block.start == composite.grids[chiplet].num_tiles
            stops.append((block.start, block.stop))
        assert stops[0][0] == 0
        for (_, stop), (start, _) in zip(stops, stops[1:]):
            assert start == stop
        assert stops[-1][1] == composite.num_tiles

    @given(composite=_composites())
    @settings(max_examples=40, deadline=None)
    def test_lattice_indices_unique_and_in_range(self, composite):
        lattice = composite.occupied_lattice_tiles()
        assert len(set(lattice.tolist())) == composite.num_tiles
        assert lattice.min() >= 0
        assert lattice.max() < composite.rows * composite.cols

    @given(composite=_composites())
    @settings(max_examples=40, deadline=None)
    def test_to_grid_round_trip(self, composite):
        values = np.arange(composite.num_tiles, dtype=float)
        board = composite.to_grid(values)
        assert board.shape == (composite.rows, composite.cols)
        assert np.count_nonzero(~np.isnan(board)) == composite.num_tiles
        assert np.array_equal(
            board.flat[composite.occupied_lattice_tiles()], values
        )

    @given(rows=st.integers(1, 5), cols=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_single_chiplet_matches_tile_grid(self, rows, cols):
        grid = TileGrid(rows, cols)
        composite = CompositeGrid(grids=(grid,), origins=((0, 0),))
        assert composite.rows == rows and composite.cols == cols
        for flat, r, c in grid.iter_tiles():
            assert composite.locate(flat) == (0, r, c)
            assert composite.lattice_index(flat) == flat
            assert composite.row_col(flat) == (r, c)
            assert composite.tile_center(r, c) == grid.tile_center(r, c)

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            CompositeGrid(
                grids=(TileGrid(2, 2), TileGrid(2, 2)),
                origins=((0, 0), (1, 1)),
            )

    def test_rejects_mixed_pitch(self):
        with pytest.raises(ValueError):
            CompositeGrid(
                grids=(TileGrid(2, 2), TileGrid(2, 2, tile_width=1e-3)),
                origins=((0, 0), (0, 4)),
            )


class TestComposePower:
    def test_scalars_split_evenly(self):
        composite = CompositeGrid(
            grids=(TileGrid(2, 2), TileGrid(1, 2)), origins=((0, 0), (0, 3))
        )
        power = compose_chiplet_power(composite, [8.0, 3.0])
        assert np.allclose(power[:4], 2.0)
        assert np.allclose(power[4:], 1.5)

    def test_vectors_concatenate_in_block_order(self):
        composite = CompositeGrid(
            grids=(TileGrid(1, 2), TileGrid(1, 2)), origins=((0, 0), (0, 3))
        )
        power = compose_chiplet_power(
            composite, [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        )
        assert np.array_equal(power, [1.0, 2.0, 3.0, 4.0])

    def test_rejects_wrong_length(self):
        composite = CompositeGrid(grids=(TileGrid(2, 2),), origins=((0, 0),))
        with pytest.raises(ValueError):
            compose_chiplet_power(composite, [np.ones(3)])


class TestLayoutValidation:
    def test_duplicate_names_rejected(self):
        spec = ChipletSpec("a", TileGrid(2, 2), 1.0)
        other = ChipletSpec("a", TileGrid(2, 2), 1.0, col_offset=4)
        with pytest.raises(ValueError):
            ChipletLayout((spec, other), stack=grown_default_stack(5e-3, 5e-3))

    def test_undersized_spreader_rejected(self):
        # 40 x 40 tiles = 20 mm exceeds the default 18 mm spreader; the
        # old code silently produced negative periphery resistances.
        with pytest.raises(ValueError):
            ChipletLayout((ChipletSpec("big", TileGrid(40, 40), 10.0),))

    def test_layout_from_plain_grows_default_stack(self):
        layout = layout_from_plain(((40, 40, 0, 0, 10.0),))
        assert layout.stack.spreader.side >= 1.5 * 20e-3

    def test_single_die_detection(self):
        single = ChipletLayout((ChipletSpec("die", TileGrid(4, 4), 5.0),))
        assert single.is_single_die()
        offset = ChipletLayout(
            (ChipletSpec("die", TileGrid(4, 4), 5.0, col_offset=1),),
            stack=grown_default_stack(3e-3, 2e-3),
        )
        assert not offset.is_single_die()
        with_itp = ChipletLayout(
            (ChipletSpec("die", TileGrid(4, 4), 5.0),),
            interposer=InterposerSpec(),
        )
        assert not with_itp.is_single_die()


class TestChipletDifferential:
    """The acceptance gate: composite vs the independent reference."""

    @pytest.mark.parametrize(
        "layout",
        [
            demo_two_chiplet_layout(rows=4, cols=4, gap=2, power_w=8.0),
            demo_two_chiplet_layout(
                rows=4, cols=4, gap=2, power_w=8.0,
                interposer=InterposerSpec(board_resistance=2.0),
            ),
            layout_from_plain(
                ((3, 5, 0, 0, 6.0), (2, 2, 1, 7, 9.0)), interposer=True
            ),
            layout_from_plain(((4, 4, 0, 0, 8.0), (4, 4, 0, 6, 8.0)),
                              interposer=False),
        ],
        ids=["demo", "board", "asymmetric", "no-interposer"],
    )
    def test_agrees_with_reference_to_1e6_kelvin(self, layout):
        model = CompositeThermalModel(layout)
        reference = ReferenceChipletModel(layout)
        state = model.solve(0.0)
        assert model.num_nodes == reference.num_nodes
        assert state.peak_silicon_c == pytest.approx(
            reference.peak_tile_temperature_c(), abs=1.0e-6
        )
        assert np.max(
            np.abs(state.silicon_c - reference.tile_temperatures_c())
        ) <= 1.0e-6

    def test_interposer_couples_chiplets(self):
        # Heat only chiplet0; with the interposer, chiplet1 must warm
        # up strictly more than without it.
        plain = ((3, 3, 0, 0, 9.0), (3, 3, 0, 5, 0.0))
        coupled = CompositeThermalModel(
            layout_from_plain(plain, interposer=True)
        ).solve(0.0)
        uncoupled = CompositeThermalModel(
            layout_from_plain(plain, interposer=False)
        ).solve(0.0)
        other = list(range(9, 18))
        assert np.max(coupled.silicon_c[other]) > np.max(
            uncoupled.silicon_c[other]
        )
        # And the hot chiplet runs cooler with the extra exit path.
        assert coupled.peak_silicon_c < uncoupled.peak_silicon_c


class TestSingleDieIdentity:
    """A single-die layout must take the exact single-die code path."""

    def test_bitwise_identical_blueprint_and_matrices(self):
        grid = TileGrid(5, 4)
        power = np.linspace(0.1, 2.0, grid.num_tiles)
        layout = ChipletLayout(
            (ChipletSpec("die", grid, tuple(power)),)
        )
        routed = thermal_model_for_layout(layout)
        direct = PackageThermalModel(grid, power)
        assert type(routed) is PackageThermalModel
        assert routed.system.g_matrix.shape == direct.system.g_matrix.shape
        assert np.array_equal(
            routed.system.g_matrix.toarray(), direct.system.g_matrix.toarray()
        )
        assert np.array_equal(routed.system.p_base, direct.system.p_base)
        bp_routed = routed.network_blueprint()
        bp_direct = direct.network_blueprint()
        assert bp_routed._events == bp_direct._events
        assert bp_routed._templates == bp_direct._templates

    def test_problem_factory_degenerates(self):
        layout = ChipletLayout((ChipletSpec("die", TileGrid(4, 4), 5.0),))
        problem = CoolingSystemProblem.from_chiplet_layout(layout)
        assert problem.layout is None
        assert type(problem.model(())) is PackageThermalModel


class TestCompositeModel:
    @pytest.fixture(scope="class")
    def layout(self):
        return demo_two_chiplet_layout(rows=4, cols=4, gap=2, power_w=8.0)

    def test_blueprint_replay_bitwise(self, layout):
        base = CompositeThermalModel(layout)
        blueprint = base.network_blueprint()
        replayed = CompositeThermalModel(
            layout, tec_tiles=(0, 5, 17), blueprint=blueprint
        )
        fresh = CompositeThermalModel(layout, tec_tiles=(0, 5, 17))
        assert np.array_equal(
            replayed.system.g_matrix.toarray(),
            fresh.system.g_matrix.toarray(),
        )
        assert np.array_equal(replayed.system.p_base, fresh.system.p_base)
        assert np.array_equal(
            replayed.system.d_diagonal, fresh.system.d_diagonal
        )

    def test_tec_stamping_uses_global_indices(self, layout):
        model = CompositeThermalModel(layout, tec_tiles=(0, 17))
        assert [stamp.tile for stamp in model.stamps] == [0, 17]
        grouped = model.tiles_by_chiplet()
        assert grouped == {"chiplet0": (0,), "chiplet1": (17,)}

    def test_mg_backend_matches_direct(self, layout):
        direct = CompositeThermalModel(layout, solver_mode="direct")
        mg = CompositeThermalModel(layout, solver_mode="mg")
        assert mg.solve(0.0).peak_silicon_c == pytest.approx(
            direct.solve(0.0).peak_silicon_c, abs=1.0e-6
        )

    def test_transient_runs_on_composite(self, layout):
        from repro.thermal.transient import TransientSimulator, node_capacitances

        model = CompositeThermalModel(layout)
        capacitance = node_capacitances(model)
        assert np.all(capacitance > 0.0)
        # Interposer nodes carry the slab capacitance, not the floor.
        from repro.thermal.network import NodeRole

        itp = [
            index for index, node in enumerate(model.network.nodes)
            if node.role is NodeRole.INTERPOSER
        ]
        assert itp and np.all(capacitance[itp] > 1.0e-6)
        trace = TransientSimulator(model, dt=1e-3, rom="off").run(5)
        assert trace.shape == (5,)
        assert np.all(np.isfinite(trace))


class TestGreedyPerChiplet:
    def test_deploy_places_tecs_in_every_hot_chiplet(self):
        layout = demo_two_chiplet_layout(rows=4, cols=4, gap=2, power_w=8.0)
        problem = CoolingSystemProblem.from_chiplet_layout(layout)
        assert problem.layout is layout
        result = problem.deploy()
        assert result.feasible
        grouped = result.tiles_by_chiplet()
        assert set(grouped) == {"chiplet0", "chiplet1"}
        assert all(len(tiles) > 0 for tiles in grouped.values())
        first = layout.chiplet_tiles(0)
        assert all(t in first for t in grouped["chiplet0"])

    def test_per_chiplet_currents(self):
        from repro.core.multipin import chiplet_groups, optimize_pin_groups

        layout = demo_two_chiplet_layout(rows=3, cols=3, gap=2, power_w=7.0)
        problem = CoolingSystemProblem.from_chiplet_layout(layout)
        model = problem.model(tuple(range(model_tiles := 18)))
        groups = chiplet_groups(model)
        assert [len(g) for g in groups] == [9, 9]
        result = optimize_pin_groups(model, groups=groups, max_sweeps=1)
        assert result.peak_c <= result.shared_peak_c + 1.0e-6
