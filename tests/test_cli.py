"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestInfo:
    def test_prints_calibration(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "convection R" in out
        assert "alpha = 2.0e-04" in out


class TestSolve:
    def test_benchmark_solve(self, capsys):
        assert main(["solve", "--benchmark", "hc08"]) == 0
        out = capsys.readouterr().out
        assert "feasible:     True" in out
        assert "I_opt" in out

    def test_infeasible_exit_code(self, capsys):
        # hc06 is infeasible at 85 C (its table limit is 89 C)
        assert main(["solve", "--benchmark", "hc06", "--limit", "85"]) == 1

    def test_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        assert main(["solve", "--benchmark", "hc08", "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["feasible"] is True
        assert data["num_tecs"] == len(data["tec_tiles"])

    def test_full_cover_flag(self, capsys):
        assert main(["solve", "--benchmark", "hc08", "--full-cover"]) == 0
        assert "SwingLoss" in capsys.readouterr().out

    def test_flp_requires_powers(self, tmp_path):
        flp = tmp_path / "x.flp"
        flp.write_text("u 6e-3 6e-3 0 0\n")
        with pytest.raises(SystemExit):
            main(["solve", "--flp", str(flp)])

    def test_flp_solve(self, tmp_path, capsys):
        from repro.io.flp import write_flp
        from repro.power.alpha import alpha_floorplan

        plan = alpha_floorplan()
        flp = tmp_path / "alpha.flp"
        write_flp(plan, flp)
        powers = tmp_path / "powers.json"
        powers.write_text(
            json.dumps({unit.name: unit.power_w for unit in plan.units})
        )
        code = main([
            "solve", "--flp", str(flp), "--powers", str(powers),
            "--rows", "12", "--cols", "12", "--limit", "85",
        ])
        assert code == 0
        assert "devices:" in capsys.readouterr().out


class TestTable1:
    def test_selected_rows(self, capsys, tmp_path):
        out_path = tmp_path / "rows.json"
        code = main(["table1", "--benchmarks", "alpha", "hc08",
                     "--json", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "hc08" in out
        from repro.io.results import rows_from_json

        rows = rows_from_json(str(out_path))
        assert [row.name for row in rows] == ["alpha", "hc08"]

    def test_markdown_flag(self, capsys):
        assert main(["table1", "--benchmarks", "hc08", "--markdown"]) == 0
        assert capsys.readouterr().out.startswith("| bench |")


class TestValidate:
    def test_pass(self, capsys):
        assert main(["validate", "--refine", "1", "--trace-steps", "8"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestRunaway:
    def test_curve_printed(self, capsys):
        assert main(["runaway", "--benchmark", "hc08"]) == 0
        out = capsys.readouterr().out
        assert "lambda_m" in out


class TestConjecture:
    def test_small_campaign(self, capsys):
        code = main(["conjecture", "--matrices", "10",
                     "--min-size", "3", "--max-size", "5", "--seed", "7"])
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out
