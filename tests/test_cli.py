"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestInfo:
    def test_prints_calibration(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "convection R" in out
        assert "alpha = 2.0e-04" in out


class TestSolve:
    def test_benchmark_solve(self, capsys):
        assert main(["solve", "--benchmark", "hc08"]) == 0
        out = capsys.readouterr().out
        assert "feasible:     True" in out
        assert "I_opt" in out

    def test_infeasible_exit_code(self, capsys):
        # hc06 is infeasible at 85 C (its table limit is 89 C)
        assert main(["solve", "--benchmark", "hc06", "--limit", "85"]) == 1

    def test_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        assert main(["solve", "--benchmark", "hc08", "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["feasible"] is True
        assert data["num_tecs"] == len(data["tec_tiles"])

    def test_full_cover_flag(self, capsys):
        assert main(["solve", "--benchmark", "hc08", "--full-cover"]) == 0
        assert "SwingLoss" in capsys.readouterr().out

    def test_flp_requires_powers(self, tmp_path):
        flp = tmp_path / "x.flp"
        flp.write_text("u 6e-3 6e-3 0 0\n")
        with pytest.raises(SystemExit):
            main(["solve", "--flp", str(flp)])

    def test_flp_solve(self, tmp_path, capsys):
        from repro.io.flp import write_flp
        from repro.power.alpha import alpha_floorplan

        plan = alpha_floorplan()
        flp = tmp_path / "alpha.flp"
        write_flp(plan, flp)
        powers = tmp_path / "powers.json"
        powers.write_text(
            json.dumps({unit.name: unit.power_w for unit in plan.units})
        )
        code = main([
            "solve", "--flp", str(flp), "--powers", str(powers),
            "--rows", "12", "--cols", "12", "--limit", "85",
        ])
        assert code == 0
        assert "devices:" in capsys.readouterr().out


class TestSolveBackend:
    @pytest.mark.parametrize("flag", ["--backend", "--solver-mode"])
    def test_krylov_backend_accepted(self, capsys, flag):
        assert main(["solve", "--benchmark", "hc08", flag, "krylov",
                     "--solver-stats"]) == 0
        out = capsys.readouterr().out
        assert "feasible:     True" in out
        assert "krylov backend" in out

    def test_auto_backend_accepted(self, capsys):
        assert main(["solve", "--benchmark", "hc08", "--backend", "auto"]) == 0
        assert "feasible:     True" in capsys.readouterr().out

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--benchmark", "hc08", "--backend", "jacobi"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestTransient:
    _BASE = ["transient", "--benchmark", "hc08", "--tiles", "5", "6",
             "--current", "0.5", "--dt", "0.01", "--steps", "5"]

    def test_explicit_deployment_runs(self, capsys):
        assert main(self._BASE) == 0
        out = capsys.readouterr().out
        assert "final peak:" in out
        assert "steady peak:" in out
        assert "2 TECs at i = 0.500 A" in out

    def test_solver_stats_printed(self, capsys):
        assert main(self._BASE + ["--solver-stats", "--backend", "direct"]) == 0
        out = capsys.readouterr().out
        assert "solver stats (direct backend):" in out
        assert "LU + " in out

    def test_json_written(self, capsys, tmp_path):
        path = tmp_path / "transient.json"
        assert main(self._BASE + ["--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["tec_tiles"] == [5, 6]
        assert payload["steps"] == 5
        assert len(payload["peak_trace_c"]) == 5
        assert payload["max_peak_c"] >= payload["peak_trace_c"][0]

    def test_dt_validated(self, capsys):
        with pytest.raises(SystemExit, match="--dt"):
            main(["transient", "--benchmark", "hc08", "--tiles", "5",
                  "--current", "0.5", "--dt", "0"])

    def test_steps_validated(self, capsys):
        with pytest.raises(SystemExit, match="--steps"):
            main(["transient", "--benchmark", "hc08", "--tiles", "5",
                  "--current", "0.5", "--steps", "0"])


class TestControl:
    _BASE = ["control", "--benchmark", "hc08", "--tiles", "5", "6",
             "--controller", "constant", "--current", "0.5",
             "--dt", "0.01", "--steps", "5"]

    def test_constant_controller_runs(self, capsys):
        assert main(self._BASE) == 0
        out = capsys.readouterr().out
        assert "constant controller" in out
        assert "factorizations:" in out

    def test_bangbang_controller_runs(self, capsys):
        assert main(["control", "--benchmark", "hc08", "--tiles", "5", "6",
                     "--steps", "5", "--dt", "0.01"]) == 0
        assert "bangbang controller" in capsys.readouterr().out

    def test_solver_stats_printed(self, capsys):
        assert main(self._BASE + ["--solver-stats"]) == 0
        assert "solver stats (" in capsys.readouterr().out

    def test_json_written(self, capsys, tmp_path):
        path = tmp_path / "control.json"
        assert main(self._BASE + ["--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["controller"] == "constant"
        assert payload["tec_tiles"] == [5, 6]
        assert payload["factorizations"] >= 1
        assert "solver_stats" in payload

    def test_steps_validated(self, capsys):
        with pytest.raises(SystemExit, match="--steps"):
            main(["control", "--benchmark", "hc08", "--tiles", "5",
                  "--steps", "0"])

    def test_loop_parameters_validated(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["control", "--benchmark", "hc08", "--tiles", "5",
                  "--steps", "5", "--dt", "0"])
        assert "repro control: error" in str(excinfo.value)


class TestRomFlags:
    """The shared ``--rom*`` parent parser on transient and control."""

    def test_modes_track_mor_literal(self):
        from repro import cli
        from repro.linalg.mor import ROM_MODES

        assert cli._ROM_MODES == ROM_MODES

    @pytest.mark.parametrize("command", ["transient", "control"])
    def test_rom_flags_parse(self, command):
        args = build_parser().parse_args(
            [command, "--rom", "always", "--rom-dim", "16",
             "--rom-tol", "1e-4"]
        )
        assert args.rom == "always"
        assert args.rom_dim == 16
        assert args.rom_tol == pytest.approx(1e-4)

    @pytest.mark.parametrize("command", ["transient", "control"])
    def test_rom_defaults(self, command):
        args = build_parser().parse_args([command])
        assert args.rom == "auto"
        assert args.rom_dim is None
        assert args.rom_tol is None

    @pytest.mark.parametrize("command", ["transient", "control"])
    def test_unknown_rom_mode_rejected(self, capsys, command):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--rom", "sometimes"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_transient_rom_end_to_end(self, capsys, tmp_path):
        path = tmp_path / "transient.json"
        argv = TestTransient._BASE + ["--rom", "always", "--json", str(path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "rom:" in out and "certified error" in out
        payload = json.loads(path.read_text())
        # rom_steps is net of rewound (full-order-replayed) steps.
        assert 0 <= payload["rom"]["rom_steps"] <= 5
        assert payload["rom"]["certified_error_k"] >= 0.0

    def test_control_rom_end_to_end(self, capsys, tmp_path):
        path = tmp_path / "control.json"
        argv = TestControl._BASE + ["--rom", "always", "--json", str(path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "wall clock:" in out
        assert "certified error" in out
        payload = json.loads(path.read_text())
        assert 0 <= payload["rom"]["rom_steps"] <= 5
        assert payload["wall_s"] > 0.0

    def test_rom_off_json_reports_null(self, tmp_path, capsys):
        path = tmp_path / "transient.json"
        argv = TestTransient._BASE + ["--rom", "off", "--json", str(path)]
        assert main(argv) == 0
        payload = json.loads(path.read_text())
        assert payload["rom"] is None


class TestWorkersValidation:
    """``--workers N`` with N < 1 must die with a clear argparse error,
    not a ProcessPoolExecutor traceback."""

    @pytest.mark.parametrize("value", ["0", "-1", "-4"])
    def test_table1_rejects_nonpositive(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--benchmarks", "alpha", "--workers", value])
        assert excinfo.value.code == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1", "-4"])
    def test_sweep_rejects_nonpositive(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--benchmark", "alpha", "--workers", value])
        assert excinfo.value.code == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err

    def test_non_integer_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--benchmarks", "alpha", "--workers", "two"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_positive_value_parses(self):
        args = build_parser().parse_args(
            ["table1", "--benchmarks", "alpha", "--workers", "2"]
        )
        assert args.workers == 2


class TestRoundsAndEngine:
    """``--max-rounds`` validation mirrors ``--workers``; the engine
    and round-stats flags ride the solve/table1 paths end to end."""

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_solve_rejects_nonpositive_rounds(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--benchmark", "hc08", "--max-rounds", value])
        assert excinfo.value.code == 2
        assert "--max-rounds must be a positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_table1_rejects_nonpositive_rounds(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--benchmarks", "alpha", "--max-rounds", value])
        assert excinfo.value.code == 2
        assert "--max-rounds must be a positive integer" in capsys.readouterr().err

    def test_non_integer_rounds_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--benchmark", "hc08", "--max-rounds", "two"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--benchmark", "hc08", "--engine", "warp"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_solve_incremental_with_round_stats(self, capsys):
        code = main([
            "solve", "--benchmark", "hc08",
            "--engine", "incremental", "--round-stats",
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "round stats (incremental engine:" in out
        assert "round 0:" in out

    def test_solve_max_rounds_caps_loop(self, capsys):
        # hc06 at 85 C is infeasible, so the greedy loop runs multiple
        # rounds; capping at 1 must still exit cleanly (infeasible).
        code = main([
            "solve", "--benchmark", "hc06", "--limit", "85",
            "--max-rounds", "1", "--round-stats",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "round 0:" in out
        assert "round 1:" not in out

    def test_table1_round_stats(self, capsys):
        code = main([
            "table1", "--benchmarks", "alpha",
            "--engine", "incremental", "--round-stats",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "round 0:" in out


class TestSweepBackend:
    def test_backend_flag_pins_scenarios(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main([
            "sweep", "--benchmark", "hc08", "--power-scales", "1.0",
            "--backend", "krylov", "--sweep-report", str(report_path),
        ])
        assert code == 0
        from repro.io.results import sweep_report_from_json

        report = sweep_report_from_json(str(report_path))
        assert report.ok

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--benchmark", "alpha", "--backend", "cg"])
        assert excinfo.value.code == 2


class TestBackendValidation:
    """Every backend-taking subcommand validates ``--backend`` at parse
    time against one shared list that tracks ``SOLVER_MODES`` — an
    unknown backend dies with argparse's usage error (exit code 2)
    before any model is built."""

    #: command -> extra argv needed to satisfy parse-time requirements.
    _COMMANDS = {
        "solve": ["--benchmark", "alpha"],
        "sweep": [],
        "transient": [],
        "control": [],
        "serve": [],
    }

    def test_backends_track_solver_modes(self):
        from repro import cli
        from repro.thermal.session import SOLVER_MODES

        assert cli._BACKENDS == SOLVER_MODES

    @pytest.mark.parametrize("command", sorted(_COMMANDS))
    def test_unknown_backend_rejected_at_parse_time(self, capsys, command):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--backend", "jacobi"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    @pytest.mark.parametrize("command", sorted(_COMMANDS))
    @pytest.mark.parametrize(
        "backend", ["direct", "reuse", "krylov", "cholesky", "auto"]
    )
    def test_every_solver_mode_parses(self, command, backend):
        argv = [command, "--backend", backend] + self._COMMANDS[command]
        args = build_parser().parse_args(argv)
        stored = getattr(args, "solver_mode", None) or getattr(
            args, "backend", None
        )
        assert stored == backend


class TestTable1:
    def test_selected_rows(self, capsys, tmp_path):
        out_path = tmp_path / "rows.json"
        code = main(["table1", "--benchmarks", "alpha", "hc08",
                     "--json", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "hc08" in out
        from repro.io.results import rows_from_json

        rows = rows_from_json(str(out_path))
        assert [row.name for row in rows] == ["alpha", "hc08"]

    def test_markdown_flag(self, capsys):
        assert main(["table1", "--benchmarks", "hc08", "--markdown"]) == 0
        assert capsys.readouterr().out.startswith("| bench |")


class TestValidate:
    def test_pass(self, capsys):
        assert main(["validate", "--refine", "1", "--trace-steps", "8"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestRunaway:
    def test_curve_printed(self, capsys):
        assert main(["runaway", "--benchmark", "hc08"]) == 0
        out = capsys.readouterr().out
        assert "lambda_m" in out


class TestConjecture:
    def test_small_campaign(self, capsys):
        code = main(["conjecture", "--matrices", "10",
                     "--min-size", "3", "--max-size", "5", "--seed", "7"])
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out
