"""Multi-pin (per-group current) optimization."""

import numpy as np
import pytest

from repro.core.current import minimize_peak_temperature
from repro.core.multipin import (
    MultiPinModel,
    cluster_devices,
    optimize_pin_groups,
)


class TestMultiPinModel:
    def test_requires_deployment(self, small_model):
        with pytest.raises(ValueError, match="deployed"):
            MultiPinModel(small_model)

    def test_uniform_vector_matches_shared_solve(self, small_deployed):
        pin_model = MultiPinModel(small_deployed)
        current = 4.0
        uniform = np.full(pin_model.num_devices, current)
        theta = pin_model.solve(uniform)
        expected = small_deployed.solve(current).theta_k
        assert np.allclose(theta, expected, atol=1e-9)

    def test_peak_matches_shared_solve(self, small_deployed):
        pin_model = MultiPinModel(small_deployed)
        uniform = np.full(pin_model.num_devices, 3.0)
        assert pin_model.peak_silicon_c(uniform) == pytest.approx(
            small_deployed.solve(3.0).peak_silicon_c
        )

    def test_power_matches_shared_solve(self, small_deployed):
        pin_model = MultiPinModel(small_deployed)
        uniform = np.full(pin_model.num_devices, 5.0)
        assert pin_model.tec_input_power_w(uniform) == pytest.approx(
            small_deployed.solve(5.0).tec_input_power_w(), rel=1e-9
        )

    def test_vector_validation(self, small_deployed):
        pin_model = MultiPinModel(small_deployed)
        with pytest.raises(ValueError, match="length"):
            pin_model.solve(np.zeros(2))
        with pytest.raises(ValueError, match="non-negative"):
            pin_model.solve(np.full(pin_model.num_devices, -1.0))

    def test_asymmetric_currents_change_field(self, small_deployed):
        pin_model = MultiPinModel(small_deployed)
        n = pin_model.num_devices
        a = np.full(n, 3.0)
        b = a.copy()
        b[0] = 6.0
        assert not np.allclose(pin_model.solve(a), pin_model.solve(b))


class TestClustering:
    def test_one_group_is_everything(self, small_deployed):
        groups = cluster_devices(small_deployed, 1)
        assert groups == [list(range(len(small_deployed.stamps)))]

    def test_n_groups_are_singletons(self, small_deployed):
        n = len(small_deployed.stamps)
        groups = cluster_devices(small_deployed, n)
        assert sorted(len(g) for g in groups) == [1] * n

    def test_partition_property(self, alpha_deployed):
        groups = cluster_devices(alpha_deployed, 3)
        seen = sorted(device for group in groups for device in group)
        assert seen == list(range(len(alpha_deployed.stamps)))

    def test_deterministic(self, alpha_deployed):
        assert cluster_devices(alpha_deployed, 3) == cluster_devices(
            alpha_deployed, 3
        )

    def test_bounds_checked(self, small_deployed):
        with pytest.raises(ValueError):
            cluster_devices(small_deployed, 0)
        with pytest.raises(ValueError):
            cluster_devices(small_deployed, 99)

    def test_spatial_coherence(self, alpha_deployed):
        """Each cluster's members sit nearer their own centroid than
        any other cluster's centroid."""
        grid = alpha_deployed.grid
        groups = cluster_devices(alpha_deployed, 2)
        points = [
            np.array(
                [
                    grid.tile_center(*grid.row_col(alpha_deployed.stamps[j].tile))
                    for j in group
                ]
            )
            for group in groups
        ]
        centroids = [p.mean(axis=0) for p in points]
        for gi, members in enumerate(points):
            for point in members:
                own = np.linalg.norm(point - centroids[gi])
                for gj, other in enumerate(centroids):
                    if gj != gi:
                        assert own <= np.linalg.norm(point - other) + 1e-12


class TestOptimization:
    def test_single_group_stays_at_shared_optimum(self, small_deployed):
        shared = minimize_peak_temperature(small_deployed)
        result = optimize_pin_groups(small_deployed, num_groups=1, max_sweeps=2)
        assert result.peak_c == pytest.approx(shared.peak_c, abs=0.05)
        assert result.improvement_c == pytest.approx(0.0, abs=0.05)

    def test_per_device_never_worse(self, small_deployed):
        result = optimize_pin_groups(small_deployed, max_sweeps=2)
        assert result.peak_c <= result.shared_peak_c + 1e-6
        assert result.improvement_c >= -1e-6

    def test_group_expansion_consistent(self, small_deployed):
        result = optimize_pin_groups(small_deployed, num_groups=2, max_sweeps=1)
        for group, current in zip(result.groups, result.group_currents):
            for device in group:
                assert result.device_currents[device] == pytest.approx(current)

    def test_explicit_groups_validated(self, small_deployed):
        with pytest.raises(ValueError, match="partition"):
            optimize_pin_groups(small_deployed, groups=[[0, 0], [1]])
        with pytest.raises(ValueError, match="cover"):
            optimize_pin_groups(small_deployed, groups=[[0]])

    def test_groups_and_num_groups_exclusive(self, small_deployed):
        with pytest.raises(ValueError, match="not both"):
            optimize_pin_groups(
                small_deployed, groups=[[0, 1, 2, 3]], num_groups=2
            )

    def test_more_groups_never_worse_than_fewer(self, small_deployed):
        one = optimize_pin_groups(small_deployed, num_groups=1, max_sweeps=2)
        per_device = optimize_pin_groups(small_deployed, max_sweeps=2)
        assert per_device.peak_c <= one.peak_c + 0.05

    def test_evaluation_accounting(self, small_deployed):
        result = optimize_pin_groups(small_deployed, num_groups=2, max_sweeps=1)
        assert result.evaluations > 0


class TestProblem2Differential:
    def test_single_group_reduces_to_problem_2(self, small_deployed):
        """With ``k = 1`` the group sweep *is* Problem 2: driven to a
        tight bracket, the two independent golden-section searches must
        land on the same optimum.  The peak agrees to solver precision;
        the current only to ~1e-5 A, because the objective is flat at
        the optimum and the two paths (solve_diagonal vs the scalar
        engine) carry ~1e-9 K evaluation noise that shifts a
        noise-dominated bracket by a few microamps."""
        shared = minimize_peak_temperature(small_deployed, tolerance=1e-8)
        result = optimize_pin_groups(
            small_deployed, num_groups=1,
            current_tolerance=1e-8, tolerance_c=0.0, max_sweeps=4,
        )
        assert result.group_currents[0] == pytest.approx(
            shared.current, abs=1e-5
        )
        assert result.peak_c == pytest.approx(shared.peak_c, abs=1e-6)
