"""Eta/zeta decomposition and the Theorem 4 convexity certificate."""

import numpy as np
import pytest

from repro.core.convexity import (
    certify_convexity,
    eta_derivative,
    eta_zeta,
    numerical_convexity_check,
)
from repro.utils.units import CELSIUS_OFFSET


class TestEtaZeta:
    def test_requires_tecs(self, small_model):
        with pytest.raises(ValueError, match="no TECs"):
            eta_zeta(small_model, 0.0)
        with pytest.raises(ValueError, match="no TECs"):
            eta_derivative(small_model, 0.0)

    def test_nonnegative(self, small_deployed):
        eta, zeta = eta_zeta(small_deployed, 2.0)
        assert np.all(eta >= -1e-12)
        assert np.all(zeta >= -1e-12)

    def test_equation10_reconstructs_temperature(self, small_deployed):
        """theta_k = (r i^2 / 2) eta_k + zeta_k + ambient response."""
        current = 3.0
        eta, zeta = eta_zeta(small_deployed, current)
        device = small_deployed.device
        # the zeta here covers only tile powers; add the ambient
        # contribution via a solve against the ground part of p_base.
        p_ambient = small_deployed.system.p_base.copy()
        p_ambient[small_deployed.silicon_nodes] -= small_deployed.power_map
        ambient_part = small_deployed.solver.solve_rhs(current, p_ambient)[
            small_deployed.silicon_nodes
        ]
        reconstructed = (
            0.5 * device.electrical_resistance * current**2 * eta
            + zeta
            + ambient_part
        )
        state = small_deployed.solve(current)
        assert np.allclose(reconstructed, state.silicon_k, atol=1e-9)

    def test_eta_derivative_matches_finite_difference(self, small_deployed):
        current = 2.0
        h = 1e-5
        eta_plus, _ = eta_zeta(small_deployed, current + h)
        eta_minus, _ = eta_zeta(small_deployed, current - h)
        fd = (eta_plus - eta_minus) / (2.0 * h)
        analytic = eta_derivative(small_deployed, current)
        assert np.allclose(analytic, fd, rtol=1e-4, atol=1e-10)

    def test_eta_derivative_nondecreasing(self, small_deployed):
        """eta convex (Theorem 3) => eta' non-decreasing in i."""
        d0 = eta_derivative(small_deployed, 0.0)
        d5 = eta_derivative(small_deployed, 5.0)
        assert np.all(d5 >= d0 - 1e-12)


class TestCertificate:
    @pytest.fixture(scope="class")
    def certificate(self, small_deployed):
        lam = small_deployed.runaway_current().value
        return certify_convexity(small_deployed, 0.6 * lam, subdivisions=4)

    def test_certified_on_package(self, certificate):
        assert certificate.certified
        assert certificate.margin > 0.0

    def test_interval_structure(self, certificate):
        assert len(certificate.intervals) == 4
        for chk in certificate.intervals:
            assert chk.lower < chk.upper
            assert chk.certified

    def test_solve_count_positive(self, certificate):
        assert certificate.solves > 0

    def test_i_max_validation(self, small_deployed):
        lam = small_deployed.runaway_current().value
        with pytest.raises(ValueError):
            certify_convexity(small_deployed, 1.5 * lam)
        with pytest.raises(ValueError):
            certify_convexity(small_deployed, 0.0)

    def test_parameter_validation(self, small_deployed):
        with pytest.raises(ValueError):
            certify_convexity(small_deployed, 1.0, subdivisions=0)
        with pytest.raises(ValueError):
            certify_convexity(small_deployed, 1.0, samples_per_interval=1)

    def test_certificate_implies_numerical_convexity(self, small_deployed):
        """Cross-check: the certified range really is convex."""
        lam = small_deployed.runaway_current().value
        certificate = certify_convexity(small_deployed, 0.6 * lam, subdivisions=4)
        assert certificate.certified
        convex, worst = numerical_convexity_check(small_deployed, 0.6 * lam)
        assert convex, worst


class TestNumericalCheck:
    def test_passes_on_package(self, small_deployed):
        lam = small_deployed.runaway_current().value
        convex, worst = numerical_convexity_check(small_deployed, 0.8 * lam)
        assert convex

    def test_sample_validation(self, small_deployed):
        with pytest.raises(ValueError):
            numerical_convexity_check(small_deployed, 1.0, samples=2)

    def test_detects_nonconvex_series(self):
        """Sanity: the second-difference detector is not vacuous."""
        series = np.array([0.0, 1.0, 0.0])  # concave spike
        second = series[:-2] - 2.0 * series[1:-1] + series[2:]
        assert second.min() < 0
