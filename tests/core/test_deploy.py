"""GreedyDeploy (Figure 5) semantics."""

import numpy as np
import pytest

from repro.core.deploy import greedy_deploy


class TestFeasibleInstance:
    @pytest.fixture(scope="class")
    def result(self, small_problem):
        return greedy_deploy(small_problem)

    def test_feasible(self, result, small_problem):
        assert result.feasible
        assert result.peak_c <= small_problem.max_temperature_c + 1e-9

    def test_deployment_covers_initial_offenders(self, result, small_problem):
        bare = small_problem.model(()).solve(0.0)
        offenders = small_problem.tiles_above_limit(bare)
        assert offenders <= set(result.tec_tiles)

    def test_iterations_recorded(self, result):
        assert result.iterations
        first = result.iterations[0]
        assert first.index == 0
        assert first.deployment_size == len(first.added_tiles)

    def test_deployment_grows_monotonically(self, result):
        sizes = [it.deployment_size for it in result.iterations]
        assert sizes == sorted(sizes)

    def test_final_model_matches_tiles(self, result):
        assert result.model.tec_tiles == result.tec_tiles

    def test_tec_power_consistent(self, result):
        state = result.model.solve(result.current)
        assert result.tec_power_w == pytest.approx(state.tec_input_power_w())

    def test_cooling_swing(self, result):
        assert result.cooling_swing_c == pytest.approx(
            result.no_tec_peak_c - result.peak_c
        )
        assert result.cooling_swing_c > 0.0

    def test_runtime_positive(self, result):
        assert result.runtime_s > 0.0


class TestTrivialInstance:
    def test_no_offenders_no_tecs(self, small_problem):
        relaxed = small_problem.with_limit(200.0)
        result = greedy_deploy(relaxed)
        assert result.feasible
        assert result.tec_tiles == ()
        assert result.current == 0.0
        assert result.num_tecs == 0
        assert result.iterations == []


class TestInfeasibleInstance:
    def test_returns_false_when_limit_unreachable(self, small_problem):
        # Slightly above ambient: no TEC deployment can get there.
        ambient = small_problem.stack.ambient_c
        impossible = small_problem.with_limit(ambient + 0.5)
        result = greedy_deploy(impossible)
        assert not result.feasible
        assert result.peak_c > impossible.max_temperature_c
        # Figure 5 line 13: every offender was already covered.
        final_offenders = set(result.iterations[-1].offending_tiles)
        assert final_offenders <= set(result.tec_tiles)

    def test_infeasible_result_still_reports_current(self, small_problem):
        ambient = small_problem.stack.ambient_c
        result = greedy_deploy(small_problem.with_limit(ambient + 0.5))
        assert result.current >= 0.0
        assert result.num_tecs > 0


class TestAlphaBenchmark:
    """GreedyDeploy on the paper's Alpha instance (Table I row 1)."""

    def test_feasible_at_85(self, alpha_greedy):
        assert alpha_greedy.feasible
        assert alpha_greedy.peak_c <= 85.0

    def test_no_tec_peak_91_8(self, alpha_greedy):
        assert alpha_greedy.no_tec_peak_c == pytest.approx(91.8, abs=0.05)

    def test_tec_count_in_paper_range(self, alpha_greedy):
        assert 10 <= alpha_greedy.num_tecs <= 20  # paper: 16

    def test_current_in_paper_range(self, alpha_greedy):
        assert 4.0 <= alpha_greedy.current <= 8.0  # paper: 6.10 A

    def test_tec_power_order(self, alpha_greedy):
        assert 0.5 <= alpha_greedy.tec_power_w <= 2.5  # paper: 1.31 W

    def test_covers_high_density_units(self, alpha_greedy, alpha_problem):
        """Figure 7(b): the deployment sits over/around IntReg/IntExec."""
        from repro.power.alpha import alpha_floorplan

        plan = alpha_floorplan()
        covered = set(alpha_greedy.tec_tiles)
        intreg = set(plan.unit("IntReg").tiles)
        assert intreg <= covered

    def test_l2_not_covered(self, alpha_greedy):
        from repro.power.alpha import alpha_floorplan

        l2 = set(alpha_floorplan().unit("L2").tiles)
        assert not (l2 & set(alpha_greedy.tec_tiles))

    def test_max_rounds_cap_respected(self, alpha_problem):
        result = greedy_deploy(alpha_problem, max_rounds=1)
        assert len(result.iterations) <= 1


class TestMaxRoundsZero:
    def test_zero_rounds_returns_infeasible(self, small_problem):
        """max_rounds=0 on a violating chip must not crash on the absent
        optimum; it reports the bare chip as infeasible."""
        result = greedy_deploy(small_problem, max_rounds=0)
        assert not result.feasible
        assert result.tec_tiles == ()
        assert result.current == 0.0
        assert result.peak_c == pytest.approx(result.no_tec_peak_c)
        assert result.iterations == []
        assert result.tec_power_w == 0.0

    def test_zero_rounds_trivial_instance_feasible(self, small_problem):
        result = greedy_deploy(small_problem.with_limit(200.0), max_rounds=0)
        assert result.feasible
        assert result.tec_tiles == ()

    def test_negative_rounds_rejected(self, small_problem):
        with pytest.raises(ValueError, match="max_rounds"):
            greedy_deploy(small_problem, max_rounds=-1)


class TestSolveEngineRegression:
    """The fused engine must not change what GreedyDeploy returns."""

    @pytest.fixture(scope="class")
    def engine_and_legacy(self, small_grid, small_power, small_problem):
        from repro.core.problem import CoolingSystemProblem

        limit = small_problem.max_temperature_c
        engine = CoolingSystemProblem(
            small_grid, small_power, max_temperature_c=limit, name="engine",
        )
        legacy = CoolingSystemProblem(
            small_grid, small_power, max_temperature_c=limit, name="legacy",
        ).configure_solver(mode="direct", incremental=False)
        return greedy_deploy(engine), greedy_deploy(legacy)

    def test_same_deployment(self, engine_and_legacy):
        engine, legacy = engine_and_legacy
        assert engine.tec_tiles == legacy.tec_tiles
        assert engine.feasible == legacy.feasible

    def test_same_current_and_peak(self, engine_and_legacy):
        engine, legacy = engine_and_legacy
        assert engine.current == pytest.approx(legacy.current, abs=1e-6)
        assert engine.peak_c == pytest.approx(legacy.peak_c, abs=1e-9)

    def test_engine_factorizes_less(self, engine_and_legacy):
        engine, legacy = engine_and_legacy
        assert engine.solver_stats.factorizations < legacy.solver_stats.factorizations

    def test_engine_replays_builds(self, engine_and_legacy):
        engine, legacy = engine_and_legacy
        assert engine.solver_stats.incremental_builds > 0
        assert legacy.solver_stats.incremental_builds == 0


class TestSolverStatsField:
    def test_stats_attached_and_serializable(self, small_problem):
        import json

        from repro.io.results import deployment_to_dict

        result = greedy_deploy(small_problem)
        assert result.solver_stats is not None
        assert result.solver_stats.solves > 0
        payload = deployment_to_dict(result)
        assert payload["solver_stats"]["solves"] == result.solver_stats.solves
        json.dumps(payload)  # must be JSON-representable
