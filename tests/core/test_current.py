"""Problem 2: the convex current-setting subroutine."""

import numpy as np
import pytest

from repro.core.current import minimize_peak_temperature, polish_current


class TestGoldenSection:
    @pytest.fixture(scope="class")
    def optimum(self, small_deployed):
        return minimize_peak_temperature(small_deployed, record_history=True)

    def test_interior_optimum(self, optimum):
        assert 0.0 < optimum.current < optimum.lambda_m

    def test_beats_endpoints(self, small_deployed, optimum):
        peak_zero = small_deployed.solve(0.0).peak_silicon_c
        assert optimum.peak_c <= peak_zero + 1e-9

    def test_first_order_optimality(self, small_deployed, optimum):
        """The optimum is a local (hence global, convex) minimum."""
        delta = 0.05
        left = small_deployed.solve(max(optimum.current - delta, 0.0)).peak_silicon_c
        right = small_deployed.solve(optimum.current + delta).peak_silicon_c
        assert optimum.peak_c <= left + 1e-6
        assert optimum.peak_c <= right + 1e-6

    def test_beats_dense_grid(self, small_deployed, optimum):
        grid = np.linspace(0.0, 0.9 * optimum.lambda_m, 120)
        best = min(small_deployed.solve(i).peak_silicon_c for i in grid)
        assert optimum.peak_c <= best + 0.02

    def test_history_recorded(self, optimum):
        assert optimum.history
        assert all(len(pair) == 2 for pair in optimum.history)

    def test_converged_flag(self, optimum):
        assert optimum.converged
        assert optimum.method == "golden"

    def test_evaluation_budget_reasonable(self, optimum):
        assert optimum.evaluations < 120


class TestGradientDescent:
    def test_agrees_with_golden(self, small_deployed):
        golden = minimize_peak_temperature(small_deployed, method="golden")
        gradient = minimize_peak_temperature(small_deployed, method="gradient")
        assert gradient.peak_c == pytest.approx(golden.peak_c, abs=0.05)

    def test_method_label(self, small_deployed):
        result = minimize_peak_temperature(small_deployed, method="gradient")
        assert result.method == "gradient"


class TestEdgeCases:
    def test_no_tec_model_trivial(self, small_model):
        result = minimize_peak_temperature(small_model)
        assert result.current == 0.0
        assert np.isinf(result.lambda_m)
        assert result.converged

    def test_unknown_method(self, small_deployed):
        with pytest.raises(ValueError, match="unknown method"):
            minimize_peak_temperature(small_deployed, method="simplex")

    def test_tolerance_validated(self, small_deployed):
        with pytest.raises(ValueError):
            minimize_peak_temperature(small_deployed, tolerance=0.0)

    def test_safety_fraction_validated(self, small_deployed):
        with pytest.raises(ValueError):
            minimize_peak_temperature(small_deployed, safety_fraction=1.0)

    def test_result_peak_matches_model(self, small_deployed):
        result = minimize_peak_temperature(small_deployed)
        assert small_deployed.solve(result.current).peak_silicon_c == pytest.approx(
            result.peak_c
        )


class TestGradientExactness:
    def test_analytic_gradient_matches_finite_difference(self, small_deployed):
        from repro.core.current import _PeakObjective

        objective = _PeakObjective(small_deployed)
        current = 3.0
        grad, _ = objective.gradient(current)
        h = 1e-5
        fd = (objective(current + h) - objective(current - h)) / (2.0 * h)
        assert grad == pytest.approx(fd, rel=1e-4, abs=1e-6)


class TestConvergedFlag:
    def test_gradient_converged_on_real_model(self, small_deployed):
        result = minimize_peak_temperature(small_deployed, method="gradient")
        assert result.converged

    def test_golden_converged_on_real_model(self, small_deployed):
        result = minimize_peak_temperature(small_deployed, method="golden")
        assert result.converged

    def test_line_search_exhaustion_far_from_optimum_not_converged(self):
        """A misleading gradient must not be reported as convergence.

        The objective decreases monotonically (f(i) = i going down as i
        shrinks... here f(i) = i with claimed gradient -1), so Armijo
        backtracking in the claimed descent direction (+1) always fails
        while the true improvement lies the other way.
        """
        from repro.core.current import _gradient_descent

        class Misleading:
            def __call__(self, current):
                return float(current)

            def gradient(self, current):
                return -1.0, None  # claims descent towards larger i

        current, value, converged = _gradient_descent(
            Misleading(), upper=10.0, tolerance=1e-4, max_iterations=50
        )
        assert not converged

    def test_boundary_minimum_still_converged(self):
        """Exhaustion at a genuine (projected) stationary point stays
        converged: the minimum of f(i) = (i - 20)^2 on [0, 10] is the
        boundary i = 10; no tolerance-sized move improves."""
        from repro.core.current import _gradient_descent

        class Boundary:
            def __call__(self, current):
                return (float(current) - 20.0) ** 2

            def gradient(self, current):
                return 2.0 * (float(current) - 20.0), None

        current, value, converged = _gradient_descent(
            Boundary(), upper=10.0, tolerance=1e-4, max_iterations=200
        )
        assert current == pytest.approx(10.0, abs=1e-3)
        assert converged


class TestAttachedStats:
    def test_stats_delta_attached(self, small_grid, small_power):
        from repro.core.problem import CoolingSystemProblem

        problem = CoolingSystemProblem(small_grid, small_power, name="stats")
        model = problem.model((5, 6, 9, 10))
        result = minimize_peak_temperature(model)
        assert result.stats is not None
        assert result.stats.solves == result.evaluations
        assert result.stats.solves > 0

    def test_trivial_model_stats(self, small_grid, small_power):
        from repro.thermal.model import PackageThermalModel

        model = PackageThermalModel(small_grid, small_power)
        result = minimize_peak_temperature(model)
        assert result.stats is not None
        assert result.stats.solves == 1


class TestNewtonMethod:
    """Safeguarded secant/bisection on the exact slope (warm rounds)."""

    @pytest.fixture(scope="class")
    def golden(self, small_deployed):
        return minimize_peak_temperature(
            small_deployed, method="golden", tolerance=1e-6)

    def test_agrees_with_golden(self, small_deployed, golden):
        newton = minimize_peak_temperature(
            small_deployed, method="newton", tolerance=1e-6)
        assert newton.method == "newton"
        assert newton.converged
        assert newton.current == pytest.approx(golden.current, abs=1e-5)
        assert newton.peak_c == pytest.approx(golden.peak_c, abs=1e-9)

    def test_warm_bounds_cut_evaluations(self, small_deployed, golden):
        cold = minimize_peak_temperature(
            small_deployed, method="newton", tolerance=1e-6)
        half = 0.25 * golden.current
        warm = minimize_peak_temperature(
            small_deployed, method="newton", tolerance=1e-6,
            lambda_m=golden.lambda_m,
            bounds=(golden.current - half, golden.current + half))
        assert warm.current == pytest.approx(golden.current, abs=1e-5)
        assert warm.evaluations <= cold.evaluations

    def test_drifted_bounds_still_converge(self, small_deployed, golden):
        # The warm bracket no longer contains the minimizer: the
        # slope-sign doubling must walk out and still find it.
        off = minimize_peak_temperature(
            small_deployed, method="newton", tolerance=1e-6,
            bounds=(2.0 * golden.current, 2.5 * golden.current))
        assert off.current == pytest.approx(golden.current, abs=1e-4)


class TestPolishCurrent:
    """The deterministic fixed-point refinement of a raw argmin."""

    @pytest.fixture(scope="class")
    def setting(self, small_deployed):
        optimum = minimize_peak_temperature(
            small_deployed, method="golden", tolerance=1e-4)
        return small_deployed, optimum

    def test_never_worse_than_input(self, setting):
        model, optimum = setting
        upper = 0.98 * optimum.lambda_m
        polished, evaluations = polish_current(
            model, optimum.current, upper=upper)
        assert evaluations > 0
        raw_peak = model.solve(optimum.current).peak_silicon_c
        polished_peak = model.solve(polished).peak_silicon_c
        assert polished_peak <= raw_peak + 1e-12

    def test_fixed_point_is_start_independent(self, setting):
        # Raw argmins scattered across the solver-noise plateau
        # (~1e-5 wide here) must polish to one fixed point — this is
        # what lets the two engines' optima be compared at 1e-6 A.
        model, optimum = setting
        upper = 0.98 * optimum.lambda_m
        a, _ = polish_current(model, optimum.current + 1e-5, upper=upper)
        b, _ = polish_current(model, optimum.current - 1e-5, upper=upper)
        assert a == pytest.approx(b, abs=1e-7)

    def test_idempotent(self, setting):
        model, optimum = setting
        upper = 0.98 * optimum.lambda_m
        once, _ = polish_current(model, optimum.current, upper=upper)
        twice, _ = polish_current(model, once, upper=upper)
        assert twice == pytest.approx(once, abs=1e-6)

    def test_far_start_returns_input_unchanged(self, setting):
        # The 2h vertex guard: a start far outside the fit window is
        # not dragged anywhere — the input comes back untouched (the
        # caller's search result stands).
        model, optimum = setting
        upper = 0.98 * optimum.lambda_m
        start = optimum.current * 1.2
        polished, evaluations = polish_current(model, start, upper=upper)
        assert polished == start
        assert evaluations == 3

    def test_upper_below_minimizer_returns_input(self, setting):
        model, optimum = setting
        polished, _ = polish_current(
            model, optimum.current, upper=optimum.current * 0.5)
        assert polished == optimum.current
