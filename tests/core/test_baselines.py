"""No-TEC and Full-Cover baselines; the SwingLoss phenomenon."""

import pytest

from repro.core.baselines import full_cover, no_tec_peak_c, swing_loss_c
from repro.core.deploy import greedy_deploy


class TestNoTec:
    def test_matches_bare_model(self, small_problem):
        expected = small_problem.model(()).solve(0.0).peak_silicon_c
        assert no_tec_peak_c(small_problem) == pytest.approx(expected)


class TestFullCover:
    @pytest.fixture(scope="class")
    def fc(self, small_problem):
        return full_cover(small_problem)

    def test_covers_every_tile(self, fc, small_problem):
        assert fc.model.tec_tiles == tuple(range(small_problem.grid.num_tiles))

    def test_min_peak_at_its_own_optimum(self, fc):
        model = fc.model
        for current in (0.5 * fc.current, 1.5 * fc.current + 0.1):
            assert model.solve(current).peak_silicon_c >= fc.min_peak_c - 1e-6

    def test_power_consistent(self, fc):
        state = fc.model.solve(fc.current)
        assert fc.tec_power_w == pytest.approx(state.tec_input_power_w())

    def test_meets_limit_flag(self, fc, small_problem):
        assert fc.meets_limit == (
            fc.min_peak_c <= small_problem.max_temperature_c
        )


class TestSwingLoss:
    def test_over_deployment_hurts_on_alpha(self, alpha_problem, alpha_greedy):
        """The paper's central comparison: full cover cannot reach the
        peak temperature the greedy deployment reaches."""
        fc = full_cover(alpha_problem)
        loss = swing_loss_c(alpha_greedy, fc)
        assert loss > 0.0
        # paper reports 5.2 C on Alpha; the calibrated model lands in
        # the same few-degree regime.
        assert 1.0 <= loss <= 8.0

    def test_full_cover_misses_the_85_limit_on_alpha(self, alpha_problem):
        fc = full_cover(alpha_problem)
        assert not fc.meets_limit

    def test_swing_loss_formula(self, alpha_greedy):
        class Dummy:
            min_peak_c = 90.0

        assert swing_loss_c(alpha_greedy, Dummy()) == pytest.approx(
            90.0 - alpha_greedy.peak_c
        )
