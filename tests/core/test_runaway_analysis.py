"""System-level thermal-runaway curves (Theorem 2 made visible)."""

import numpy as np
import pytest

from repro.core.runaway import RunawayCurve, influence_sweep, runaway_curve


class TestRunawayCurve:
    @pytest.fixture(scope="class")
    def curve(self, small_deployed):
        return runaway_curve(small_deployed, max_fraction=0.999)

    def test_requires_tecs(self, small_model):
        with pytest.raises(ValueError, match="no TECs"):
            runaway_curve(small_model)

    def test_samples_below_lambda_m(self, curve):
        assert np.all(curve.currents < curve.lambda_m)

    def test_temperature_diverges(self, curve):
        """Theorem 2: peak temperature explodes approaching lambda_m."""
        assert curve.peak_c[-1] > 10.0 * curve.peak_c[0]
        assert curve.diverged

    def test_h_entry_diverges_with_temperature(self, curve):
        assert curve.h_peak[-1] > 10.0 * curve.h_peak[0]

    def test_nonmonotone_then_explodes(self, small_deployed):
        """The curve first dips (cooling) then blows up — the shape of
        Figure 6.  Fine fractions near zero expose the dip, which sits
        at a few amperes while lambda_m is two orders larger."""
        fine = runaway_curve(
            small_deployed,
            fractions=[0.0, 0.005, 0.01, 0.02, 0.1, 0.5, 0.99],
        )
        assert np.argmin(fine.peak_c) > 0
        assert np.argmax(fine.peak_c) == len(fine.peak_c) - 1

    def test_blow_up_ratio(self, curve):
        assert curve.blow_up_ratio() > 10.0

    def test_fraction_validation(self, small_deployed):
        with pytest.raises(ValueError):
            runaway_curve(small_deployed, fractions=[0.5, 1.2])
        with pytest.raises(ValueError):
            runaway_curve(small_deployed, max_fraction=1.0)

    def test_explicit_fractions(self, small_deployed):
        curve = runaway_curve(small_deployed, fractions=[0.0, 0.5, 0.9])
        assert curve.currents.shape == (3,)


class TestInfluenceSweep:
    def test_matrix_of_pairs(self, small_deployed):
        nodes = small_deployed.silicon_nodes
        pairs = [(nodes[0], nodes[0]), (nodes[0], nodes[5])]
        currents = [0.0, 2.0, 4.0]
        values = influence_sweep(small_deployed, pairs, currents)
        assert values.shape == (2, 3)

    def test_nonnegative_lemma3(self, small_deployed):
        nodes = small_deployed.silicon_nodes
        pairs = [(nodes[0], nodes[9]), (nodes[3], nodes[3])]
        values = influence_sweep(small_deployed, pairs, np.linspace(0, 5, 6))
        assert np.all(values >= -1e-12)

    def test_symmetry_of_h(self, small_deployed):
        """H is symmetric: h_kl = h_lk at any current."""
        nodes = small_deployed.silicon_nodes
        pairs = [(nodes[0], nodes[7]), (nodes[7], nodes[0])]
        values = influence_sweep(small_deployed, pairs, [3.0])
        assert values[0, 0] == pytest.approx(values[1, 0])

    def test_zero_current_matches_passive_inverse(self, small_deployed):
        node = small_deployed.silicon_nodes[0]
        value = influence_sweep(small_deployed, [(node, node)], [0.0])[0, 0]
        unit = np.zeros(small_deployed.num_nodes)
        unit[node] = 1.0
        expected = small_deployed.solver.solve_rhs(0.0, unit)[node]
        assert value == pytest.approx(expected)


class TestBlowUpRatioSemantics:
    """Direct checks of the ratio on hand-built curves."""

    @staticmethod
    def _curve(peaks, h):
        peaks = np.asarray(peaks, dtype=float)
        h = np.asarray(h, dtype=float)
        return RunawayCurve(
            lambda_m=10.0,
            currents=np.linspace(0.0, 9.0, peaks.size),
            peak_c=peaks,
            h_peak=h,
            diverged=bool(peaks[-1] > peaks[0]),
        )

    def test_dipping_curve_measures_rise_from_minimum(self):
        # Figure 6 shape: dip to the optimal-cooling minimum, then
        # blow up.  Rise at the end (200 - 45) over rise at the start
        # (50 - 45).
        curve = self._curve([50.0, 45.0, 60.0, 200.0], [1.0, 1.0, 2.0, 10.0])
        assert curve.blow_up_ratio() == pytest.approx(155.0 / 5.0)

    def test_monotone_curve_falls_back_to_h_ratio(self):
        # The first sample *is* the minimum, so the temperature-rise
        # reference is exactly zero; the ratio must fall back to the
        # h_kk divergence instead of dividing by a clamp.
        curve = self._curve([50.0, 60.0, 200.0], [2.0, 3.0, 40.0])
        assert curve.blow_up_ratio() == pytest.approx(20.0)

    def test_flat_curve_is_one(self):
        curve = self._curve([50.0, 50.0], [1.0, 1.0])
        assert curve.blow_up_ratio() == 1.0

    def test_real_monotone_slice_is_finite_and_sane(self, small_deployed):
        # Fractions past the cooling dip give a monotone curve; the
        # fallback must still report a large-but-meaningful divergence
        # indicator, not a division by a clamp.
        curve = runaway_curve(small_deployed, fractions=[0.5, 0.9, 0.999])
        assert np.all(np.diff(curve.peak_c) > 0.0)
        ratio = curve.blow_up_ratio()
        assert 1.0 < ratio < 1e9
        assert ratio == pytest.approx(curve.h_peak[-1] / curve.h_peak[0])


class TestInfluenceSweepBatched:
    def test_matches_single_vector_solves(self, small_deployed):
        """The batched multi-RHS path returns exactly what one
        unit-column solve per (pair, current) returns."""
        nodes = small_deployed.silicon_nodes
        pairs = [
            (nodes[0], nodes[0]),
            (nodes[3], nodes[0]),   # shares column l with the first
            (nodes[1], nodes[7]),
        ]
        currents = [0.0, 1.5, 3.0]
        batched = influence_sweep(small_deployed, pairs, currents)
        for row, (k, l) in enumerate(pairs):
            unit = np.zeros(small_deployed.num_nodes)
            unit[l] = 1.0
            for col, current in enumerate(currents):
                h = small_deployed.solver.solve_rhs(float(current), unit)
                assert batched[row, col] == pytest.approx(
                    float(h[k]), rel=1e-12, abs=1e-15)

    def test_empty_inputs(self, small_deployed):
        assert influence_sweep(small_deployed, [], [1.0]).shape == (0, 1)
        assert influence_sweep(
            small_deployed, [(0, 0)], []).shape == (1, 0)
