"""System-level thermal-runaway curves (Theorem 2 made visible)."""

import numpy as np
import pytest

from repro.core.runaway import influence_sweep, runaway_curve


class TestRunawayCurve:
    @pytest.fixture(scope="class")
    def curve(self, small_deployed):
        return runaway_curve(small_deployed, max_fraction=0.999)

    def test_requires_tecs(self, small_model):
        with pytest.raises(ValueError, match="no TECs"):
            runaway_curve(small_model)

    def test_samples_below_lambda_m(self, curve):
        assert np.all(curve.currents < curve.lambda_m)

    def test_temperature_diverges(self, curve):
        """Theorem 2: peak temperature explodes approaching lambda_m."""
        assert curve.peak_c[-1] > 10.0 * curve.peak_c[0]
        assert curve.diverged

    def test_h_entry_diverges_with_temperature(self, curve):
        assert curve.h_peak[-1] > 10.0 * curve.h_peak[0]

    def test_nonmonotone_then_explodes(self, small_deployed):
        """The curve first dips (cooling) then blows up — the shape of
        Figure 6.  Fine fractions near zero expose the dip, which sits
        at a few amperes while lambda_m is two orders larger."""
        fine = runaway_curve(
            small_deployed,
            fractions=[0.0, 0.005, 0.01, 0.02, 0.1, 0.5, 0.99],
        )
        assert np.argmin(fine.peak_c) > 0
        assert np.argmax(fine.peak_c) == len(fine.peak_c) - 1

    def test_blow_up_ratio(self, curve):
        assert curve.blow_up_ratio() > 10.0

    def test_fraction_validation(self, small_deployed):
        with pytest.raises(ValueError):
            runaway_curve(small_deployed, fractions=[0.5, 1.2])
        with pytest.raises(ValueError):
            runaway_curve(small_deployed, max_fraction=1.0)

    def test_explicit_fractions(self, small_deployed):
        curve = runaway_curve(small_deployed, fractions=[0.0, 0.5, 0.9])
        assert curve.currents.shape == (3,)


class TestInfluenceSweep:
    def test_matrix_of_pairs(self, small_deployed):
        nodes = small_deployed.silicon_nodes
        pairs = [(nodes[0], nodes[0]), (nodes[0], nodes[5])]
        currents = [0.0, 2.0, 4.0]
        values = influence_sweep(small_deployed, pairs, currents)
        assert values.shape == (2, 3)

    def test_nonnegative_lemma3(self, small_deployed):
        nodes = small_deployed.silicon_nodes
        pairs = [(nodes[0], nodes[9]), (nodes[3], nodes[3])]
        values = influence_sweep(small_deployed, pairs, np.linspace(0, 5, 6))
        assert np.all(values >= -1e-12)

    def test_symmetry_of_h(self, small_deployed):
        """H is symmetric: h_kl = h_lk at any current."""
        nodes = small_deployed.silicon_nodes
        pairs = [(nodes[0], nodes[7]), (nodes[7], nodes[0])]
        values = influence_sweep(small_deployed, pairs, [3.0])
        assert values[0, 0] == pytest.approx(values[1, 0])

    def test_zero_current_matches_passive_inverse(self, small_deployed):
        node = small_deployed.silicon_nodes[0]
        value = influence_sweep(small_deployed, [(node, node)], [0.0])[0, 0]
        unit = np.zeros(small_deployed.num_nodes)
        unit[node] = 1.0
        expected = small_deployed.solver.solve_rhs(0.0, unit)[node]
        assert value == pytest.approx(expected)
