"""Alternative deployment strategies."""

import pytest

from repro.core.deploy import greedy_deploy
from repro.core.strategies import (
    compare_strategies,
    density_threshold_deploy,
    incremental_deploy,
)


class TestIncremental:
    @pytest.fixture(scope="class")
    def outcome(self, request):
        return incremental_deploy(request.getfixturevalue("small_problem"))

    def test_feasible(self, outcome, small_problem):
        assert outcome.feasible
        assert outcome.peak_c <= small_problem.max_temperature_c + 1e-9

    def test_no_larger_than_batch_greedy(self, outcome, small_problem):
        batch = greedy_deploy(small_problem)
        assert outcome.num_tecs <= batch.num_tecs

    def test_devices_on_hot_region(self, outcome):
        assert set(outcome.tec_tiles) <= {5, 6, 9, 10, 0, 1, 2, 4, 8}

    def test_budget_respected(self, small_problem):
        outcome = incremental_deploy(small_problem, max_devices=1)
        assert outcome.num_tecs <= 1

    def test_trivial_problem_deploys_nothing(self, small_problem):
        relaxed = small_problem.with_limit(200.0)
        outcome = incremental_deploy(relaxed)
        assert outcome.feasible and outcome.num_tecs == 0

    def test_infeasible_detected(self, small_problem):
        impossible = small_problem.with_limit(
            small_problem.stack.ambient_c + 0.5
        )
        outcome = incremental_deploy(impossible, max_devices=8)
        assert not outcome.feasible


class TestDensityThreshold:
    def test_high_threshold_covers_nothing(self, small_problem):
        outcome = density_threshold_deploy(small_problem, 1e9)
        assert outcome.num_tecs == 0
        assert outcome.current_a == 0.0

    def test_zero_threshold_is_full_cover(self, small_problem):
        outcome = density_threshold_deploy(small_problem, 0.0)
        assert outcome.num_tecs == small_problem.grid.num_tiles

    def test_intermediate_threshold_selects_hot_block(self, small_problem):
        # hot tiles: 0.55 W over 0.25 mm^2 = 220 W/cm^2; base 32 W/cm^2.
        outcome = density_threshold_deploy(small_problem, 100.0)
        assert set(outcome.tec_tiles) == {5, 6, 9, 10}

    def test_label_carries_threshold(self, small_problem):
        outcome = density_threshold_deploy(small_problem, 100.0)
        assert "100" in outcome.strategy


class TestComparison:
    @pytest.fixture(scope="class")
    def outcomes(self, request):
        return compare_strategies(
            request.getfixturevalue("small_problem"),
            density_thresholds=(100.0,),
        )

    def test_all_strategies_present(self, outcomes):
        assert {"greedy (Fig. 5)", "incremental", "full-cover"} <= set(outcomes)
        assert any(key.startswith("density") for key in outcomes)

    def test_greedy_meets_limit_with_far_fewer_devices(self, outcomes):
        """On the 16-tile toy chip full cover can out-cool greedy (the
        over-deployment penalty needs package scale — asserted on the
        Alpha chip in tests/core/test_baselines.py); what always holds
        is that greedy meets the limit at a fraction of the devices
        and the device power."""
        greedy = outcomes["greedy (Fig. 5)"]
        cover = outcomes["full-cover"]
        assert greedy.feasible
        assert greedy.num_tecs <= cover.num_tecs // 2
        assert greedy.tec_power_w < cover.tec_power_w

    def test_incremental_minimal_devices(self, outcomes):
        feasible = [o for o in outcomes.values() if o.feasible]
        assert min(o.num_tecs for o in feasible) == outcomes["incremental"].num_tecs

    def test_runtimes_recorded(self, outcomes):
        assert all(o.runtime_s >= 0.0 for o in outcomes.values())
