"""Peak-vs-power Pareto analysis."""

import numpy as np
import pytest

from repro.core.current import minimize_peak_temperature
from repro.core.pareto import pareto_front


class TestParetoFront:
    @pytest.fixture(scope="class")
    def front(self, request):
        model = request.getfixturevalue("small_deployed")
        return pareto_front(model, [0.0, 0.05, 0.2, 1.0, 100.0])

    def test_requires_deployment(self, small_model):
        with pytest.raises(ValueError, match="deployed"):
            pareto_front(small_model, [1.0])

    def test_needs_budgets(self, small_deployed):
        with pytest.raises(ValueError, match="budget"):
            pareto_front(small_deployed, [])

    def test_rejects_negative_budget(self, small_deployed):
        with pytest.raises(ValueError):
            pareto_front(small_deployed, [-1.0])

    def test_monotone_trade_off(self, front):
        """More budget never hurts: peaks non-increasing in budget."""
        peaks = front.peaks()
        assert np.all(np.diff(peaks) <= 1e-9)

    def test_budgets_respected(self, front):
        for point in front.points:
            assert point.p_tec_w <= point.budget_w + 1e-3

    def test_zero_budget_still_cools(self, front, small_deployed):
        """At zero *net* electrical budget the device can still run:
        at small currents the Seebeck voltage across the passive
        temperature differential drives the device in generation mode
        (P_TEC <= 0), so the zero-budget point carries a positive
        current and beats the passive peak."""
        zero = front.points[0]
        assert zero.p_tec_w <= 1e-3
        assert zero.current_a > 0.0
        assert zero.peak_c <= small_deployed.solve(0.0).peak_silicon_c + 1e-9

    def test_large_budget_reaches_unconstrained_optimum(self, front, small_deployed):
        unconstrained = minimize_peak_temperature(small_deployed)
        top = front.points[-1]
        assert not top.budget_binding
        assert top.peak_c == pytest.approx(unconstrained.peak_c, abs=1e-3)

    def test_binding_flags(self, front):
        binding = [p.budget_binding for p in front.points]
        # small budgets bind, the huge one does not
        assert binding[0] is True
        assert binding[-1] is False

    def test_anchor_fields(self, front, small_deployed):
        assert front.i_opt_a > 0.0
        assert front.p_tec_at_opt_w > 0.0
        assert front.min_peak_c <= front.peaks()[0]

    def test_half_power_recovers_most_of_the_swing(self, small_deployed):
        """Diminishing returns: half the optimal P_TEC budget buys
        well over half of the achievable cooling swing."""
        optimum = minimize_peak_temperature(small_deployed)
        p_opt = small_deployed.solve(optimum.current).tec_input_power_w()
        passive = small_deployed.solve(0.0).peak_silicon_c
        front = pareto_front(small_deployed, [0.5 * p_opt])
        swing_full = passive - optimum.peak_c
        swing_half = passive - front.points[0].peak_c
        assert swing_half > 0.6 * swing_full
