"""Peak-vs-power Pareto analysis."""

import numpy as np
import pytest

from repro.core.current import minimize_peak_temperature
from repro.core.pareto import evaluate_budget, front_from_sweep, pareto_front


class TestParetoFront:
    @pytest.fixture(scope="class")
    def front(self, request):
        model = request.getfixturevalue("small_deployed")
        return pareto_front(model, [0.0, 0.05, 0.2, 1.0, 100.0])

    def test_requires_deployment(self, small_model):
        with pytest.raises(ValueError, match="deployed"):
            pareto_front(small_model, [1.0])

    def test_needs_budgets(self, small_deployed):
        with pytest.raises(ValueError, match="budget"):
            pareto_front(small_deployed, [])

    def test_rejects_negative_budget(self, small_deployed):
        with pytest.raises(ValueError):
            pareto_front(small_deployed, [-1.0])

    def test_monotone_trade_off(self, front):
        """More budget never hurts: peaks non-increasing in budget."""
        peaks = front.peaks()
        assert np.all(np.diff(peaks) <= 1e-9)

    def test_budgets_respected(self, front):
        for point in front.points:
            assert point.p_tec_w <= point.budget_w + 1e-3

    def test_zero_budget_still_cools(self, front, small_deployed):
        """At zero *net* electrical budget the device can still run:
        at small currents the Seebeck voltage across the passive
        temperature differential drives the device in generation mode
        (P_TEC <= 0), so the zero-budget point carries a positive
        current and beats the passive peak."""
        zero = front.points[0]
        assert zero.p_tec_w <= 1e-3
        assert zero.current_a > 0.0
        assert zero.peak_c <= small_deployed.solve(0.0).peak_silicon_c + 1e-9

    def test_large_budget_reaches_unconstrained_optimum(self, front, small_deployed):
        unconstrained = minimize_peak_temperature(small_deployed)
        top = front.points[-1]
        assert not top.budget_binding
        assert top.peak_c == pytest.approx(unconstrained.peak_c, abs=1e-3)

    def test_binding_flags(self, front):
        binding = [p.budget_binding for p in front.points]
        # small budgets bind, the huge one does not
        assert binding[0] is True
        assert binding[-1] is False

    def test_anchor_fields(self, front, small_deployed):
        assert front.i_opt_a > 0.0
        assert front.p_tec_at_opt_w > 0.0
        assert front.min_peak_c <= front.peaks()[0]

    def test_zero_and_low_budget_regression(self, small_deployed):
        """Bisection audit regression (the Seebeck-generation edge).

        ``P_TEC(0) = 0`` keeps the lower bracket end feasible for every
        budget >= 0, and the generation-mode dip keeps the feasible set
        a prefix interval — so at zero and near-zero budgets the
        bisection must land on a strictly positive, budget-respecting,
        *binding* current rather than collapsing to i = 0.
        """
        optimum = minimize_peak_temperature(small_deployed)
        p_at_opt = small_deployed.solve(optimum.current).tec_input_power_w()
        passive_peak = small_deployed.solve(0.0).peak_silicon_c
        previous_current = 0.0
        for budget in (0.0, 1e-4, 1e-3, 1e-2):
            point = evaluate_budget(
                small_deployed, budget, optimum, p_at_opt
            )
            assert point.budget_binding is True
            assert point.current_a > 0.0
            # Energy-neutral (or budget-bounded) cooling: the chosen
            # current respects the budget yet still cools the hot spot.
            assert point.p_tec_w <= budget + 1e-3
            assert point.peak_c < passive_peak
            # Larger budgets admit larger currents (prefix intervals nest).
            assert point.current_a >= previous_current - 1e-12
            previous_current = point.current_a

    def test_evaluate_budget_matches_front(self, front, small_deployed):
        """The split-out per-budget unit reproduces the front's points."""
        optimum = minimize_peak_temperature(small_deployed)
        p_at_opt = small_deployed.solve(optimum.current).tec_input_power_w()
        for expected in front.points:
            point = evaluate_budget(
                small_deployed, expected.budget_w, optimum, p_at_opt
            )
            assert point.budget_binding == expected.budget_binding
            assert point.current_a == pytest.approx(
                expected.current_a, abs=1e-3
            )
            assert point.peak_c == pytest.approx(expected.peak_c, abs=1e-6)

    def test_half_power_recovers_most_of_the_swing(self, small_deployed):
        """Diminishing returns: half the optimal P_TEC budget buys
        well over half of the achievable cooling swing."""
        optimum = minimize_peak_temperature(small_deployed)
        p_opt = small_deployed.solve(optimum.current).tec_input_power_w()
        passive = small_deployed.solve(0.0).peak_silicon_c
        front = pareto_front(small_deployed, [0.5 * p_opt])
        swing_full = passive - optimum.peak_c
        swing_half = passive - front.points[0].peak_c
        assert swing_half > 0.6 * swing_full


class TestFrontFromSweep:
    """front_from_sweep vs the in-process pareto_front (differential)."""

    _BUDGETS = (0.0, 0.05, 1.0)

    @pytest.fixture(scope="class")
    def sweep_report(self, request):
        from repro.sweep import Scenario, SweepSpec, run_sweep

        small_power = request.getfixturevalue("small_power")
        scenarios = [
            Scenario(
                name="small@{}W".format(budget),
                task="pareto",
                rows=4,
                cols=4,
                power_map=tuple(small_power),
                tec_tiles=(5, 6, 9, 10),
                budget_w=budget,
            )
            for budget in self._BUDGETS
        ]
        return run_sweep(SweepSpec(scenarios=scenarios, name="small-budgets"))

    def test_front_matches_direct_computation(self, sweep_report, small_deployed):
        """Same budgets through the sweep engine and through
        pareto_front: the two paths share evaluate_budget, so points
        agree to the bisection tolerance."""
        swept = front_from_sweep(sweep_report)
        direct = pareto_front(small_deployed, list(self._BUDGETS))
        assert len(swept.points) == len(direct.points)
        for a, b in zip(swept.points, direct.points):
            assert a.budget_w == pytest.approx(b.budget_w)
            assert a.budget_binding == b.budget_binding
            assert a.current_a == pytest.approx(b.current_a, abs=1e-3)
            assert a.peak_c == pytest.approx(b.peak_c, abs=1e-4)
        assert swept.i_opt_a == pytest.approx(direct.i_opt_a, abs=1e-3)
        assert swept.min_peak_c == pytest.approx(direct.min_peak_c, abs=1e-4)

    def test_zero_budget_point_survives_the_sweep_path(self, sweep_report):
        """The energy-neutral claim holds through the engine too."""
        swept = front_from_sweep(sweep_report)
        zero = swept.points[0]
        assert zero.budget_w == 0.0
        assert zero.budget_binding is True
        assert zero.current_a > 0.0
        assert zero.p_tec_w <= 1e-3

    def test_rejects_reports_with_failures(self):
        from repro.sweep.report import ScenarioError, SweepReport

        report = SweepReport(
            spec_name="broken", backend="serial", workers=1,
            errors=(
                ScenarioError(index=0, name="x", task="pareto",
                              error_type="ValueError", message="boom"),
            ),
        )
        with pytest.raises(ValueError, match="failures"):
            front_from_sweep(report)

    def test_rejects_empty_and_wrong_task(self):
        from repro.sweep.report import ScenarioResult, SweepReport

        empty = SweepReport(spec_name="e", backend="serial", workers=1)
        with pytest.raises(ValueError, match="no points"):
            front_from_sweep(empty)
        wrong = SweepReport(
            spec_name="w", backend="serial", workers=1,
            results=(
                ScenarioResult(index=0, name="x", task="greedy",
                               values={}, elapsed_s=0.0),
            ),
        )
        with pytest.raises(ValueError, match="pareto"):
            front_from_sweep(wrong)
