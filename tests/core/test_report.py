"""Benchmark rows and Table-I formatting."""

import pytest

from repro.core.baselines import full_cover
from repro.core.report import BenchmarkRow, format_table1


@pytest.fixture(scope="module")
def row(alpha_problem_mod, alpha_greedy_mod):
    fc = full_cover(alpha_problem_mod)
    return BenchmarkRow.from_results("alpha", 85.0, alpha_greedy_mod, fc)


@pytest.fixture(scope="module")
def alpha_problem_mod(request):
    return request.getfixturevalue("alpha_problem")


@pytest.fixture(scope="module")
def alpha_greedy_mod(request):
    return request.getfixturevalue("alpha_greedy")


class TestBenchmarkRow:
    def test_fields_from_results(self, row, alpha_greedy_mod):
        assert row.num_tecs == alpha_greedy_mod.num_tecs
        assert row.i_opt_a == pytest.approx(alpha_greedy_mod.current)
        assert row.theta_peak_c == pytest.approx(alpha_greedy_mod.no_tec_peak_c)
        assert row.feasible

    def test_swing_loss_definition(self, row, alpha_greedy_mod):
        assert row.swing_loss_c == pytest.approx(
            row.fullcover_min_peak_c - alpha_greedy_mod.peak_c
        )

    def test_cooling_swing(self, row):
        assert row.cooling_swing_c == pytest.approx(
            row.theta_peak_c - row.greedy_peak_c
        )


class TestFormatting:
    def test_header_columns(self, row):
        text = format_table1([row])
        assert "theta_peak" in text and "SwingLoss" in text and "#TECs" in text

    def test_average_row(self, row):
        text = format_table1([row, row])
        assert "Avg." in text

    def test_no_average(self, row):
        text = format_table1([row], include_average=False)
        assert "Avg." not in text

    def test_markdown(self, row):
        md = format_table1([row], markdown=True)
        assert md.startswith("| bench |")

    def test_infeasible_marker(self, row):
        import dataclasses

        bad = dataclasses.replace(row, feasible=False)
        assert "NO" in format_table1([bad], include_average=False)
