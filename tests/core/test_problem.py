"""Problem 1 definition and model factory."""

import numpy as np
import pytest

from repro.core.problem import CoolingSystemProblem
from repro.power.alpha import alpha_floorplan
from repro.thermal.geometry import TileGrid


class TestConstruction:
    def test_validation(self, small_grid):
        with pytest.raises(ValueError, match="length"):
            CoolingSystemProblem(small_grid, np.zeros(3))
        with pytest.raises(ValueError, match="non-negative"):
            CoolingSystemProblem(small_grid, np.full(16, -1.0))

    def test_limit_above_ambient_enforced(self, small_grid, small_power):
        with pytest.raises(ValueError, match="ambient"):
            CoolingSystemProblem(small_grid, small_power, max_temperature_c=40.0)

    def test_from_floorplan(self):
        problem = CoolingSystemProblem.from_floorplan(alpha_floorplan(), name="a")
        assert problem.grid.num_tiles == 144
        assert float(np.sum(problem.power_map)) == pytest.approx(20.6)

    def test_from_floorplan_type_check(self, small_power):
        with pytest.raises(TypeError):
            CoolingSystemProblem.from_floorplan(small_power)

    def test_repr_mentions_name_and_limit(self, small_problem):
        text = repr(small_problem)
        assert "small" in text and "limit" in text


class TestModelFactory:
    def test_model_cached_per_deployment(self, small_problem):
        a = small_problem.model((1, 2))
        b = small_problem.model([2, 1, 2])
        assert a is b  # order/duplicates normalize to the same key

    def test_distinct_deployments_distinct_models(self, small_problem):
        assert small_problem.model(()) is not small_problem.model((0,))

    def test_model_carries_configuration(self, small_problem):
        model = small_problem.model((3,))
        assert model.tec_tiles == (3,)
        assert model.stack is small_problem.stack
        assert model.device is small_problem.device


class TestTilesAboveLimit:
    def test_consistent_with_state(self, small_problem):
        state = small_problem.model(()).solve(0.0)
        offenders = small_problem.tiles_above_limit(state)
        expected = set(
            np.nonzero(state.silicon_c > small_problem.max_temperature_c)[0].tolist()
        )
        assert offenders == expected
        assert offenders  # fixture limit sits below the bare peak

    def test_empty_when_limit_high(self, small_problem):
        relaxed = small_problem.with_limit(300.0)
        state = relaxed.model(()).solve(0.0)
        assert relaxed.tiles_above_limit(state) == set()


class TestWithLimit:
    def test_copies_limit_only(self, small_problem):
        relaxed = small_problem.with_limit(90.0)
        assert relaxed.max_temperature_c == 90.0
        assert relaxed.grid is small_problem.grid
        assert relaxed.name == small_problem.name
        assert small_problem.max_temperature_c != 90.0


class TestSolverBackendSelection:
    def test_ctor_validates_solver_mode(self, small_grid, small_power):
        with pytest.raises(ValueError, match="solver_mode"):
            CoolingSystemProblem(small_grid, small_power, solver_mode="jacobi")

    @pytest.mark.parametrize("mode", ["direct", "reuse", "krylov", "auto"])
    def test_ctor_accepts_every_backend(self, small_grid, small_power, mode):
        problem = CoolingSystemProblem(small_grid, small_power, solver_mode=mode)
        assert problem.solver_mode == mode
        assert problem.model(()).solver.mode == mode

    def test_from_floorplan_forwards_solver_mode(self):
        problem = CoolingSystemProblem.from_floorplan(
            alpha_floorplan(), solver_mode="krylov"
        )
        assert problem.solver_mode == "krylov"

    def test_with_solver_mode_copies_configuration(self, small_problem):
        small_problem.model((1,))  # record the blueprint
        sibling = small_problem.with_solver_mode("krylov")
        assert sibling.solver_mode == "krylov"
        assert sibling.max_temperature_c == small_problem.max_temperature_c
        assert sibling.grid is small_problem.grid
        assert sibling._blueprint is small_problem._blueprint
        assert small_problem.solver_mode == "reuse"  # original untouched

    def test_backends_solve_to_same_peak(self, small_problem):
        reference = small_problem.model((1, 2)).solve(0.3).peak_silicon_c
        for mode in ("direct", "krylov", "auto"):
            sibling = small_problem.with_solver_mode(mode)
            peak = sibling.model((1, 2)).solve(0.3).peak_silicon_c
            assert peak == pytest.approx(reference, abs=1e-6)
