"""Incremental GreedyDeploy engine: differential semantics and stats.

The incremental engine must be *observationally identical* to the cold
loop — same rounds, same deployment, same feasibility verdict, same
optimum.  Optima are compared after polishing both on a **common**
model (:func:`~repro.core.current.polish_current`): the engines run
different solver backends in warm rounds, and backend round-off alone
shifts the shallow parabola vertex by ~1e-6 A, while on a shared model
both argmins collapse to the same fixed point to ~1e-13 A.
"""

import json

import numpy as np
import pytest

from repro.core.current import polish_current
from repro.core.deploy import greedy_deploy
from repro.core.problem import CoolingSystemProblem
from repro.thermal.geometry import TileGrid

_CURRENT_AGREEMENT_A = 1.0e-6


def _gaussian_problem(side=12, scale=0.2, percentile=60.0):
    """A centered-hotspot instance whose greedy run takes two rounds.

    The limit sits at a bare-temperature percentile, so round 0 covers
    the hot core and the re-optimized current uncovers a wider
    offender ring; the instance ends infeasible (offenders inside the
    deployment) — both engines must agree on that verdict too.
    """
    grid = TileGrid(side, side)
    ys, xs = np.divmod(np.arange(side * side), side)
    center = (side - 1) / 2.0
    d2 = ((ys - center) ** 2 + (xs - center) ** 2) * (24.0 / side) ** 2
    shape = (
        0.05
        + 0.5 * np.exp(-d2 / (2.0 * 4.0**2))
        + 0.25 * np.exp(-d2 / (2.0 * 9.0**2))
    )
    power = shape * scale * (24.0 / side) ** 2
    problem = CoolingSystemProblem(
        grid, power, max_temperature_c=1000.0,
        name="engine-gauss-{0}x{0}".format(side),
    )
    bare = problem.model(()).solve(0.0)
    return problem.with_limit(float(np.percentile(bare.silicon_c, percentile)))


def _random_problem(seed=2, side=10, percentile=70.0):
    """A randomized multi-blob floorplan (seeded, deterministic).

    The seed is chosen so the Problem 2 optimum is smooth (a single
    peak tile active around the minimizer).  Seeds whose optimum sits
    at a peak-tile crossover put a kink under the minimum; there the
    engines still agree on the achieved peak to ~1e-8 K, but the
    parabola-fit polish is ill-posed and currents scatter at ~1e-4 A,
    which is a property of the objective, not an engine discrepancy.
    """
    rng = np.random.default_rng(seed)
    grid = TileGrid(side, side)
    ys, xs = np.divmod(np.arange(side * side), side)
    power = np.full(side * side, 0.02)
    for _ in range(4):
        cy, cx = rng.uniform(1, side - 2, size=2)
        width = rng.uniform(1.0, 2.5)
        d2 = (ys - cy) ** 2 + (xs - cx) ** 2
        power = power + rng.uniform(0.1, 0.4) * np.exp(-d2 / (2.0 * width**2))
    problem = CoolingSystemProblem(
        grid, power, max_temperature_c=1000.0, name="engine-rng",
    )
    bare = problem.model(()).solve(0.0)
    return problem.with_limit(float(np.percentile(bare.silicon_c, percentile)))


def _race(factory, **kwargs):
    cold = greedy_deploy(factory(), engine="cold",
                         current_tolerance=1.0e-6, **kwargs)
    inc = greedy_deploy(factory(), engine="incremental",
                        current_tolerance=1.0e-6, **kwargs)
    return cold, inc


def _assert_same_run(cold, inc):
    assert cold.feasible == inc.feasible
    assert len(cold.iterations) == len(inc.iterations)
    for a, b in zip(cold.iterations, inc.iterations):
        assert a.added_tiles == b.added_tiles
    assert cold.tec_tiles == inc.tec_tiles
    if cold.tec_tiles:
        upper = 0.98 * cold.current_result.lambda_m
        ref_cold, _ = polish_current(cold.model, cold.current, upper=upper)
        ref_inc, _ = polish_current(cold.model, inc.current, upper=upper)
        assert abs(ref_cold - ref_inc) <= _CURRENT_AGREEMENT_A


class TestDifferential:
    def test_alpha_round_for_round(self, alpha_problem):
        cold, inc = _race(lambda: alpha_problem.with_limit(
            alpha_problem.max_temperature_c))
        _assert_same_run(cold, inc)

    def test_two_round_gaussian(self):
        cold, inc = _race(_gaussian_problem)
        assert len(cold.iterations) == 2
        assert not cold.feasible
        _assert_same_run(cold, inc)

    def test_randomized_floorplan(self):
        cold, inc = _race(_random_problem)
        _assert_same_run(cold, inc)

    def test_direct_warm_round_on_larger_grid(self):
        """A warm round whose support crosses ``_DIRECT_MIN_SUPPORT``
        runs on the direct backend — and still matches cold."""
        cold, inc = _race(lambda: _gaussian_problem(side=16))
        _assert_same_run(cold, inc)
        modes = [r.border_mode for r in inc.deploy_stats.rounds]
        assert "direct" in modes
        assert inc.deploy_stats.border_direct >= 1


class TestMaxRoundsExhaustion:
    """Both engines report an exhausted ``max_rounds`` cap the same
    way: infeasible, with the executed rounds fully populated."""

    @pytest.mark.parametrize("engine", ["cold", "incremental"])
    def test_capped_run_reports_infeasible(self, engine):
        result = greedy_deploy(
            _gaussian_problem(), engine=engine, max_rounds=1,
        )
        assert not result.feasible
        assert len(result.iterations) == 1
        iteration = result.iterations[0]
        assert iteration.added_tiles
        assert iteration.deployment_size == len(result.tec_tiles)
        assert result.current > 0.0
        assert result.deploy_stats is not None
        assert len(result.deploy_stats.rounds) == 1

    def test_cap_above_need_changes_nothing(self):
        capped = greedy_deploy(_gaussian_problem(), engine="incremental",
                               max_rounds=10, current_tolerance=1.0e-6)
        free = greedy_deploy(_gaussian_problem(), engine="incremental",
                             current_tolerance=1.0e-6)
        assert capped.tec_tiles == free.tec_tiles
        assert capped.feasible == free.feasible


class TestEngineSelection:
    def test_unknown_engine_rejected(self, small_problem):
        with pytest.raises(ValueError, match="engine"):
            greedy_deploy(small_problem, engine="warp")

    def test_default_is_cold(self, small_problem):
        result = greedy_deploy(small_problem)
        assert result.deploy_stats.engine == "cold"


class TestDeployStats:
    @pytest.fixture(scope="class")
    def stats(self):
        return greedy_deploy(
            _gaussian_problem(), engine="incremental",
            current_tolerance=1.0e-6,
        ).deploy_stats

    def test_engine_label_and_rounds(self, stats):
        assert stats.engine == "incremental"
        assert len(stats.rounds) == 2
        assert [r.index for r in stats.rounds] == [0, 1]

    def test_reuse_layers_fired(self, stats):
        # Round 0 is cold (dense runaway, anchor); round 1 is warm on
        # every layer.
        assert stats.runaway_dense >= 1
        assert stats.runaway_warm >= 1
        assert stats.current_warm_rounds >= 1
        assert stats.border_anchor == 1
        warm = stats.rounds[1]
        assert warm.runaway_method.startswith("shift-invert")
        assert warm.current_warm
        assert warm.lambda_m > 0.0

    def test_timings_and_evaluations(self, stats):
        for r in stats.rounds:
            assert r.wall_s > 0.0
            assert r.evaluations > 0
        assert stats.total_wall_s == pytest.approx(
            sum(r.wall_s for r in stats.rounds))
        assert stats.total_evaluations == sum(
            r.evaluations for r in stats.rounds)

    def test_warm_round_cheaper(self, stats):
        cold_round, warm_round = stats.rounds
        assert warm_round.evaluations < cold_round.evaluations

    def test_as_dict_json_representable(self, stats):
        payload = stats.as_dict()
        text = json.dumps(payload)
        assert "shift-invert" in text
        assert payload["total_evaluations"] == stats.total_evaluations
        assert len(payload["rounds"]) == 2

    def test_summary_line(self, stats):
        line = stats.summary()
        assert line.startswith("incremental engine: 2 rounds")
        assert "warm" in line and "border" in line
