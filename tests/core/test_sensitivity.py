"""Design robustness: local sensitivities and Monte Carlo yield."""

import numpy as np
import pytest

from repro.core.deploy import greedy_deploy
from repro.core.sensitivity import (
    DEVICE_PARAMETERS,
    monte_carlo_feasibility,
    parameter_sensitivities,
)


@pytest.fixture(scope="module")
def small_design(request):
    problem = request.getfixturevalue("small_problem")
    return problem, greedy_deploy(problem)


class TestSensitivities:
    @pytest.fixture(scope="class")
    def sensitivities(self, request):
        problem = request.getfixturevalue("small_problem")
        design = greedy_deploy(problem)
        return parameter_sensitivities(problem, design.tec_tiles)

    def test_all_parameters_covered(self, sensitivities):
        names = {s.parameter for s in sensitivities}
        assert set(DEVICE_PARAMETERS) <= names
        assert "convection_resistance" in names

    def test_sorted_by_impact(self, sensitivities):
        impacts = [abs(s.peak_shift_c) for s in sensitivities]
        assert impacts == sorted(impacts, reverse=True)

    def test_seebeck_helps(self, sensitivities):
        """+10% Seebeck pumps harder: the achievable peak drops."""
        by_name = {s.parameter: s for s in sensitivities}
        assert by_name["seebeck"].peak_shift_c < 0.0

    def test_resistance_hurts(self, sensitivities):
        """+10% electrical resistance: more Joule, higher peak."""
        by_name = {s.parameter: s for s in sensitivities}
        assert by_name["electrical_resistance"].peak_shift_c > 0.0

    def test_seebeck_is_the_dominant_device_parameter(self, sensitivities):
        """Pumping strength rules the design: the Seebeck coefficient
        moves the achievable peak more than any other device knob."""
        by_name = {s.parameter: s for s in sensitivities}
        seebeck = abs(by_name["seebeck"].peak_shift_c)
        for name in DEVICE_PARAMETERS:
            if name != "seebeck":
                assert seebeck > abs(by_name[name].peak_shift_c), name

    def test_contacts_are_second_order(self, sensitivities):
        """Contact-conductance changes matter least — consistent with
        the calibrated contacts being good relative to the film."""
        by_name = {s.parameter: s for s in sensitivities}
        contacts = max(
            abs(by_name["cold_contact_conductance"].peak_shift_c),
            abs(by_name["hot_contact_conductance"].peak_shift_c),
        )
        assert contacts < abs(by_name["seebeck"].peak_shift_c)

    def test_step_validation(self, small_design):
        problem, design = small_design
        with pytest.raises(ValueError):
            parameter_sensitivities(problem, design.tec_tiles, relative_step=0.0)


class TestWarmStartAgreement:
    """The sensitivity warm start (polish around the nominal optimum)
    is an accelerator, not an approximation: warm and cold runs must
    agree on every shift.  Peaks match to solver precision; currents
    only to the optimizers' bracket tolerances (~1e-4 A), since the
    peak is flat at the optimum."""

    def test_parameter_sensitivities_warm_matches_cold(self, small_design):
        problem, design = small_design
        warm = parameter_sensitivities(
            problem, design.tec_tiles, warm_start=True
        )
        cold = parameter_sensitivities(
            problem, design.tec_tiles, warm_start=False
        )
        by_name = {s.parameter: s for s in cold}
        assert {s.parameter for s in warm} == set(by_name)
        for sensitivity in warm:
            reference = by_name[sensitivity.parameter]
            assert sensitivity.peak_shift_c == pytest.approx(
                reference.peak_shift_c, abs=1e-5
            )
            assert sensitivity.i_opt_shift_a == pytest.approx(
                reference.i_opt_shift_a, abs=1e-3
            )

    def test_monte_carlo_warm_matches_cold(self, small_design):
        problem, design = small_design
        kwargs = dict(samples=8, coefficient_of_variation=0.05, seed=7)
        warm = monte_carlo_feasibility(
            problem, design.tec_tiles, warm_start=True, **kwargs
        )
        cold = monte_carlo_feasibility(
            problem, design.tec_tiles, warm_start=False, **kwargs
        )
        assert warm.yield_fraction == cold.yield_fraction
        np.testing.assert_allclose(warm.peak_c, cold.peak_c, atol=1e-5)
        np.testing.assert_allclose(warm.i_opt_a, cold.i_opt_a, atol=1e-3)


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def outcome(self, request):
        problem = request.getfixturevalue("small_problem")
        design = greedy_deploy(problem)
        return monte_carlo_feasibility(
            problem, design.tec_tiles, samples=20,
            coefficient_of_variation=0.05, seed=11,
        )

    def test_counts(self, outcome):
        assert outcome.samples == 20
        assert outcome.peak_c.shape == (20,)
        assert 0.0 <= outcome.yield_fraction <= 1.0

    def test_extremes_consistent(self, outcome):
        assert outcome.worst_peak_c == pytest.approx(float(np.max(outcome.peak_c)))
        assert outcome.best_peak_c == pytest.approx(float(np.min(outcome.peak_c)))
        assert outcome.best_peak_c <= outcome.nominal_peak_c <= outcome.worst_peak_c + 1.0

    def test_multipliers_recorded_and_truncated(self, outcome):
        for name in DEVICE_PARAMETERS:
            values = outcome.multipliers[name]
            assert values.shape == (20,)
            assert np.all(values >= 1.0 - 3 * 0.05 - 1e-9)
            assert np.all(values <= 1.0 + 3 * 0.05 + 1e-9)

    def test_deterministic(self, request):
        problem = request.getfixturevalue("small_problem")
        design = greedy_deploy(problem)
        a = monte_carlo_feasibility(problem, design.tec_tiles, samples=5, seed=3)
        b = monte_carlo_feasibility(problem, design.tec_tiles, samples=5, seed=3)
        assert np.array_equal(a.peak_c, b.peak_c)

    def test_small_variation_keeps_design_feasible(self, outcome, request):
        """With 5% parameter CV the small design's margin holds for
        most samples."""
        assert outcome.yield_fraction >= 0.8

    def test_validation(self, small_design):
        problem, design = small_design
        with pytest.raises(ValueError):
            monte_carlo_feasibility(problem, design.tec_tiles, samples=0)
        with pytest.raises(ValueError):
            monte_carlo_feasibility(
                problem, design.tec_tiles, coefficient_of_variation=0.0
            )
