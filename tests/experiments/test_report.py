"""Markdown experiment report generation."""

import pytest

from repro.experiments.report import generate_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(
            benchmarks=["alpha", "hc08"],
            conjecture_matrices=10,
        )

    def test_sections_present(self, report):
        assert "## Table I" in report
        assert "## Validation" in report
        assert "## Figure 6 properties" in report
        assert "## Conjecture 1 campaign" in report

    def test_selected_rows_only(self, report):
        assert "| alpha |" in report
        assert "| hc08 |" in report
        assert "| hc03 |" not in report

    def test_deltas_table(self, report):
        assert "d theta_peak" in report

    def test_validation_verdict(self, report):
        assert "**PASS**" in report

    def test_conjecture_verdict(self, report):
        assert "**holds**" in report

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main([
            "report", "--benchmarks", "hc08",
            "--conjecture-matrices", "5", "--out", str(out),
        ])
        assert code == 0
        assert "## Table I" in out.read_text()
