"""Figure 6 / Figure 7 / runaway-figure reproductions."""

import numpy as np
import pytest

from repro.experiments.figures import figure6_data, figure7_data, runaway_figure


class TestFigure6:
    @pytest.fixture(scope="class")
    def data(self):
        return figure6_data(samples=15)

    def test_three_curves(self, data):
        assert set(data.curves) == {"h(peak,peak)", "h(peak,hot)", "h(far,peak)"}

    def test_lemma3_nonnegative(self, data):
        assert data.nonnegative

    def test_theorem3_convex(self, data):
        assert data.convex

    def test_theorem2_diverging(self, data):
        assert data.diverging

    def test_currents_below_lambda_m(self, data):
        assert np.all(data.currents < data.lambda_m)


class TestFigure7:
    @pytest.fixture(scope="class")
    def data(self):
        return figure7_data()

    def test_grid_shape(self, data):
        assert len(data.unit_grid) == 12
        assert all(len(row) == 12 for row in data.unit_grid)
        assert len(data.deployment_grid) == 12

    def test_shading_matches_tiles(self, data):
        shaded = sum(row.count("#") for row in data.deployment_grid)
        assert shaded == data.num_tecs == len(data.tec_tiles)

    def test_intreg_covered(self, data):
        assert data.covered_units.get("IntReg", 0) == 4

    def test_l2_not_covered(self, data):
        assert "L2" not in data.covered_units

    def test_render_contains_both_panels(self, data):
        text = data.render()
        assert "floorplan" in text and "#" in text


class TestRunawayFigure:
    def test_divergence(self):
        curve = runaway_figure(max_fraction=0.999)
        assert curve.diverged
        assert curve.peak_c[-1] > 1000.0  # clearly unphysical => runaway
