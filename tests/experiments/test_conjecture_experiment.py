"""The Conjecture 1 experiment wrapper."""

import pytest

from repro.experiments.conjecture import run_conjecture_experiment


class TestConjectureExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_conjecture_experiment(
            num_matrices=25,
            size_range=(3, 8),
            system_currents=(0.5,),
            system_pairs=6,
            seed=99,
        )

    def test_random_campaign_holds(self, outcome):
        assert outcome.random_result.holds
        assert outcome.random_result.matrices_tested == 25

    def test_system_matrices_satisfy_conjecture(self, outcome):
        """Theorem 3's actual consumer: G - iD of a real deployment."""
        assert outcome.system_margin > 0.0
        assert outcome.system_pairs == 6

    def test_overall_holds(self, outcome):
        assert outcome.holds

    def test_deterministic(self):
        a = run_conjecture_experiment(
            num_matrices=5, size_range=(3, 5),
            system_currents=(), system_pairs=0, seed=3,
        )
        b = run_conjecture_experiment(
            num_matrices=5, size_range=(3, 5),
            system_currents=(), system_pairs=0, seed=3,
        )
        assert a.random_result.worst_margin == b.random_result.worst_margin
