"""Table I reproduction harness."""

import pytest

from repro.experiments.table1 import run_benchmark_row, run_table1


class TestSingleRow:
    @pytest.fixture(scope="class")
    def alpha_row(self):
        return run_benchmark_row("alpha")

    def test_row_structure(self, alpha_row):
        row, greedy, fc = alpha_row
        assert row.name == "alpha"
        assert row.num_tecs == greedy.num_tecs
        assert row.fullcover_min_peak_c == pytest.approx(fc.min_peak_c)

    def test_alpha_matches_paper_shape(self, alpha_row):
        row, _, _ = alpha_row
        assert row.theta_peak_c == pytest.approx(91.8, abs=0.05)
        assert row.feasible
        assert row.greedy_peak_c <= 85.0
        assert 4.0 <= row.i_opt_a <= 8.0
        assert row.swing_loss_c > 0.0


class TestSelectedRows:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_table1(["alpha", "hc01", "hc08"])

    def test_rows_present(self, comparison):
        assert [row.name for row in comparison.rows] == ["alpha", "hc01", "hc08"]

    def test_all_feasible(self, comparison):
        assert all(row.feasible for row in comparison.rows)

    def test_deltas_structure(self, comparison):
        deltas = comparison.deltas()
        assert set(deltas) == {"alpha", "hc01", "hc08"}
        assert "swing_loss" in deltas["alpha"]

    def test_render_contains_rows(self, comparison):
        text = comparison.render()
        assert "hc01" in text and "Avg." in text

    def test_markdown_render(self, comparison):
        assert comparison.render(markdown=True).startswith("| bench |")

    def test_averages_positive(self, comparison):
        assert comparison.avg_p_tec_w > 0.0
        assert comparison.avg_swing_loss_c > 0.0
