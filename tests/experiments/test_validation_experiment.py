"""The Section VI validation experiment (< 1.5 C claim)."""

import pytest

from repro.experiments.validation import run_validation


class TestValidationExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        # refine=1 matches the granularity of the compact model; the
        # snapshot set is trimmed to keep the test quick.
        return run_validation(refine=1, trace_steps=12, snapshots=(11,))

    def test_paper_claim(self, outcome):
        assert outcome.passed
        assert outcome.worst_abs_diff_c < outcome.tolerance_c

    def test_worst_case_map_included(self, outcome):
        assert "worst-case" in outcome.per_case

    def test_trace_snapshots_included(self, outcome):
        labels = set(outcome.per_case)
        assert any(label.startswith("int-heavy@") for label in labels)
        assert any(label.startswith("memory-bound@") for label in labels)

    def test_worst_is_max_of_cases(self, outcome):
        assert outcome.worst_abs_diff_c == pytest.approx(
            max(outcome.per_case.values())
        )
