"""The technology-scaling capability envelope."""

import pytest

from repro.experiments.ablations import technology_scaling_study


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return technology_scaling_study(power_factors=(0.9, 1.0, 1.4))

    def test_power_scales(self, points):
        totals = [p.total_power_w for p in points]
        assert totals == sorted(totals)
        assert totals[1] == pytest.approx(20.6, abs=0.01)

    def test_peaks_increase_with_power(self, points):
        peaks = [p.no_tec_peak_c for p in points]
        assert peaks == sorted(peaks)

    def test_nominal_power_feasible(self, points):
        assert points[1].feasible  # the Table I alpha row

    def test_envelope_exists(self, points):
        """Enough extra power defeats the cooling system: 1.4x the
        Alpha budget is beyond the TECs' capability at 85 C."""
        assert not points[2].feasible

    def test_lighter_chip_needs_fewer_devices(self, points):
        assert points[0].num_tecs <= points[1].num_tecs
