"""The benchmark registry (Table I definitions)."""

import pytest

from repro.experiments.benchmarks import (
    BENCHMARKS,
    benchmark_names,
    load_benchmark,
)


class TestRegistry:
    def test_eleven_benchmarks_in_table_order(self):
        names = benchmark_names()
        assert names[0] == "alpha"
        assert names[1:] == ["hc{:02d}".format(k) for k in range(1, 11)]

    def test_paper_columns_present(self):
        spec = BENCHMARKS["alpha"]
        assert spec.paper_theta_peak_c == 91.8
        assert spec.paper_num_tecs == 16
        assert spec.paper_i_opt_a == 6.10

    def test_relaxed_limits_for_hc06_hc09(self):
        assert BENCHMARKS["hc06"].limit_c == 89.0
        assert BENCHMARKS["hc09"].limit_c == 88.0
        others = [
            spec.limit_c
            for name, spec in BENCHMARKS.items()
            if name not in ("hc06", "hc09")
        ]
        assert all(limit == 85.0 for limit in others)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("hc99")


class TestMaterialization:
    def test_alpha_problem(self):
        problem = load_benchmark("alpha")
        assert problem.max_temperature_c == 85.0
        assert problem.grid.num_tiles == 144

    def test_hypothetical_total_power(self):
        spec = BENCHMARKS["hc03"]
        problem = spec.problem()
        assert float(problem.power_map.sum()) == pytest.approx(spec.total_power_w)

    def test_theta_peak_matches_paper_to_tenth(self):
        """Each benchmark's bare peak reproduces the published column."""
        for name in ("alpha", "hc01", "hc05", "hc09"):
            spec = BENCHMARKS[name]
            peak = spec.problem().model(()).solve(0.0).peak_silicon_c
            assert peak == pytest.approx(spec.paper_theta_peak_c, abs=0.1), name

    def test_specs_materialize_deterministically(self):
        a = load_benchmark("hc02").power_map
        b = load_benchmark("hc02").power_map
        import numpy as np

        assert np.array_equal(a, b)

    def test_custom_device_passthrough(self):
        from repro.tec.materials import TecDeviceParameters

        device = TecDeviceParameters(seebeck=1e-4)
        problem = load_benchmark("alpha", device=device)
        assert problem.device.seebeck == pytest.approx(1e-4)
