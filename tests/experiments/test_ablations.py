"""Beyond-paper ablation studies."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    certificate_subdivision_ablation,
    grid_resolution_study,
    per_device_current_study,
    tec_parameter_sweep,
)


class TestCertificateAblation:
    @pytest.fixture(scope="class")
    def points(self):
        return certificate_subdivision_ablation(subdivision_counts=(1, 4))

    def test_point_per_count(self, points):
        assert [p.subdivisions for p in points] == [1, 4]

    def test_more_subdivisions_cost_more_solves(self, points):
        assert points[1].solves > points[0].solves

    def test_more_subdivisions_never_loosen_margin(self, points):
        """Finer subdivisions tighten the eta' bound, so the margin is
        at least as large."""
        assert points[1].margin >= points[0].margin - 1e-9

    def test_package_certifies(self, points):
        assert all(p.certified for p in points)


class TestParameterSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return tec_parameter_sweep(
            seebeck_factors=(0.5, 1.0), resistance_factors=(1.0, 2.0)
        )

    def test_grid_of_points(self, points):
        assert len(points) == 4

    def test_lower_seebeck_pumps_less(self, points):
        """Weaker Peltier coupling cools less: the best achievable
        peak temperature rises as alpha falls (at fixed r)."""
        by_key = {(p.seebeck, p.resistance): p for p in points}
        alphas = sorted({p.seebeck for p in points})
        r = min(p.resistance for p in points)
        assert by_key[(alphas[0], r)].peak_c > by_key[(alphas[1], r)].peak_c + 0.5

    def test_higher_resistance_lower_optimal_current(self, points):
        by_key = {(p.seebeck, p.resistance): p for p in points}
        resistances = sorted({p.resistance for p in points})
        alpha = max(p.seebeck for p in points)
        assert (
            by_key[(alpha, resistances[1])].i_opt_a
            <= by_key[(alpha, resistances[0])].i_opt_a + 1e-6
        )

    def test_runaway_scales_inversely_with_seebeck(self, points):
        """lambda_m ~ conductance/alpha: halving alpha doubles it."""
        by_key = {(p.seebeck, p.resistance): p for p in points}
        alphas = sorted({p.seebeck for p in points})
        r = min(p.resistance for p in points)
        ratio = by_key[(alphas[0], r)].lambda_m_a / by_key[(alphas[1], r)].lambda_m_a
        assert ratio == pytest.approx(2.0, rel=0.05)


class TestPerDeviceCurrents:
    def test_multi_pin_never_worse(self):
        result = per_device_current_study(max_sweeps=2)
        assert result.per_device_peak_c <= result.shared_peak_c + 1e-6
        assert result.improvement_c >= -1e-6
        assert result.per_device_currents.shape[0] > 0

    def test_single_pin_cost_is_small(self):
        """The paper's one-extra-pin restriction costs little on Alpha:
        per-device currents buy well under a degree."""
        result = per_device_current_study(max_sweeps=2)
        assert result.improvement_c < 1.0


class TestGridResolution:
    @pytest.fixture(scope="class")
    def points(self):
        return grid_resolution_study(resolutions=(6, 12, 24))

    def test_power_conserved_across_resolutions(self, points):
        # indirectly: peak exists and is finite at every resolution
        assert all(np.isfinite(p.peak_c) for p in points)

    def test_coarser_grid_smears_the_peak(self, points):
        by_res = {p.rows: p.peak_c for p in points}
        assert by_res[6] < by_res[12]

    def test_finer_grid_converges(self, points):
        by_res = {p.rows: p.peak_c for p in points}
        assert abs(by_res[24] - by_res[12]) < abs(by_res[12] - by_res[6])

    def test_node_counts_grow(self, points):
        nodes = [p.nodes for p in points]
        assert nodes == sorted(nodes)
