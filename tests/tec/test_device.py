"""TEC device physics — Equations (1)-(3) and classic figures of merit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tec.device import (
    coefficient_of_performance,
    cold_side_flux,
    hot_side_flux,
    input_power,
    max_temperature_differential,
    optimal_cooling_current,
    zero_cop_current,
)
from repro.tec.materials import TecDeviceParameters

DEVICE = TecDeviceParameters()


class TestFluxes:
    def test_zero_current_pure_conduction(self):
        qc = cold_side_flux(DEVICE, 0.0, 350.0, 360.0)
        qh = hot_side_flux(DEVICE, 0.0, 350.0, 360.0)
        expected = -DEVICE.thermal_conductance * 10.0
        assert qc == pytest.approx(expected)
        assert qh == pytest.approx(expected)

    def test_equation1_manual(self):
        i, tc, th = 5.0, 350.0, 355.0
        expected = (
            DEVICE.seebeck * i * tc
            - 0.5 * DEVICE.electrical_resistance * i * i
            - DEVICE.thermal_conductance * (th - tc)
        )
        assert cold_side_flux(DEVICE, i, tc, th) == pytest.approx(expected)

    def test_equation2_manual(self):
        i, tc, th = 5.0, 350.0, 355.0
        expected = (
            DEVICE.seebeck * i * th
            + 0.5 * DEVICE.electrical_resistance * i * i
            - DEVICE.thermal_conductance * (th - tc)
        )
        assert hot_side_flux(DEVICE, i, tc, th) == pytest.approx(expected)

    def test_pumping_at_moderate_current(self):
        assert cold_side_flux(DEVICE, 5.0, 355.0, 355.0) > 0.0

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            cold_side_flux(DEVICE, 1.0, -1.0, 300.0)

    @given(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=250.0, max_value=400.0),
        st.floats(min_value=250.0, max_value=400.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_equation3_identity(self, current, tc, th):
        """p = q_h - q_c holds identically (Equation 3)."""
        qc = cold_side_flux(DEVICE, current, tc, th)
        qh = hot_side_flux(DEVICE, current, tc, th)
        p = input_power(DEVICE, current, tc, th)
        assert qh - qc == pytest.approx(p, abs=1e-9)


class TestInputPower:
    def test_zero_at_zero_current(self):
        assert input_power(DEVICE, 0.0, 350.0, 360.0) == 0.0

    def test_joule_dominates_at_equal_faces(self):
        i = 10.0
        assert input_power(DEVICE, i, 350.0, 350.0) == pytest.approx(
            DEVICE.electrical_resistance * i * i
        )

    def test_seebeck_generation_can_make_power_negative(self):
        """With the cold face hotter (theta_h < theta_c) at small
        current the device recovers energy (Seebeck generator mode)."""
        assert input_power(DEVICE, 0.5, 370.0, 350.0) < 0.0


class TestCop:
    def test_nan_at_zero_current(self):
        assert np.isnan(coefficient_of_performance(DEVICE, 0.0, 350.0, 350.0))

    def test_positive_in_pumping_regime(self):
        assert coefficient_of_performance(DEVICE, 5.0, 355.0, 356.0) > 0.0

    def test_negative_when_overdriven(self):
        assert coefficient_of_performance(DEVICE, 80.0, 355.0, 356.0) < 0.0


class TestClassicFigures:
    def test_optimal_current_formula(self):
        assert optimal_cooling_current(DEVICE, 350.0) == pytest.approx(
            DEVICE.seebeck * 350.0 / DEVICE.electrical_resistance
        )

    def test_qc_maximized_at_optimal_current(self):
        i_star = optimal_cooling_current(DEVICE, 350.0)
        best = cold_side_flux(DEVICE, i_star, 350.0, 350.0)
        for i in (0.5 * i_star, 0.9 * i_star, 1.1 * i_star, 1.5 * i_star):
            assert cold_side_flux(DEVICE, i, 350.0, 350.0) <= best + 1e-12

    def test_delta_t_max_consistency(self):
        """At Delta T_max the best achievable q_c is zero."""
        th = 360.0
        dt_max = max_temperature_differential(DEVICE, th)
        tc = th - dt_max
        i_star = optimal_cooling_current(DEVICE, tc)
        assert cold_side_flux(DEVICE, i_star, tc, th) == pytest.approx(0.0, abs=1e-9)

    def test_delta_t_max_positive_and_below_th(self):
        dt = max_temperature_differential(DEVICE, 360.0)
        assert 0.0 < dt < 360.0

    def test_zero_cop_current_zeroes_qc(self):
        tc, th = 350.0, 352.0
        i_zero = zero_cop_current(DEVICE, tc, th)
        assert i_zero > 0.0
        assert cold_side_flux(DEVICE, i_zero, tc, th) == pytest.approx(0.0, abs=1e-9)

    def test_zero_cop_nan_when_unpumpable(self):
        """Face differential beyond Delta T_max: no current pumps."""
        th = 360.0
        dt_max = max_temperature_differential(DEVICE, th)
        assert np.isnan(zero_cop_current(DEVICE, th - 2.0 * dt_max, th))
