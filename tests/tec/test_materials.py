"""TEC device parameter records."""

import pytest

from repro.tec.materials import TecDeviceParameters, chowdhury_thin_film_tec


class TestParameters:
    def test_defaults_are_calibrated_device(self):
        device = chowdhury_thin_film_tec()
        assert device.seebeck == pytest.approx(2.0e-4)
        assert device.electrical_resistance == pytest.approx(2.5e-3)
        assert device.thermal_conductance == pytest.approx(2.0e-2)
        assert device.width == pytest.approx(0.5e-3)

    def test_footprint(self):
        assert TecDeviceParameters().footprint == pytest.approx(0.25e-6)

    def test_figure_of_merit(self):
        device = TecDeviceParameters(
            seebeck=2e-4, electrical_resistance=2e-3, thermal_conductance=2e-2
        )
        assert device.figure_of_merit == pytest.approx((2e-4) ** 2 / (2e-3 * 2e-2))

    def test_zt_scales_with_temperature(self):
        device = TecDeviceParameters()
        assert device.zt(400.0) == pytest.approx(device.zt(200.0) * 2.0)

    def test_zt_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            TecDeviceParameters().zt(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TecDeviceParameters(seebeck=0.0)
        with pytest.raises(ValueError):
            TecDeviceParameters(electrical_resistance=-1.0)
        with pytest.raises(ValueError):
            TecDeviceParameters(cold_contact_conductance=0.0)

    def test_scaled_override(self):
        device = TecDeviceParameters()
        scaled = device.scaled(seebeck=3e-4)
        assert scaled.seebeck == pytest.approx(3e-4)
        assert scaled.electrical_resistance == device.electrical_resistance
        assert device.seebeck == pytest.approx(2e-4)  # original unchanged

    def test_frozen(self):
        with pytest.raises(Exception):
            TecDeviceParameters().seebeck = 1.0
