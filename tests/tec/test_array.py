"""TEC arrays: series-electrical / parallel-thermal accounting."""

import numpy as np
import pytest

from repro.tec.array import TecArray
from repro.tec.device import input_power
from repro.tec.materials import TecDeviceParameters

DEVICE = TecDeviceParameters()


class TestConstruction:
    def test_count_validation(self):
        with pytest.raises(ValueError):
            TecArray(DEVICE, 0)

    def test_footprint_scales(self):
        assert TecArray(DEVICE, 16).total_footprint == pytest.approx(
            16 * DEVICE.footprint
        )

    def test_series_resistance(self):
        assert TecArray(DEVICE, 10).series_resistance == pytest.approx(
            10 * DEVICE.electrical_resistance
        )


class TestAggregation:
    def test_total_power_scalar_faces(self):
        array = TecArray(DEVICE, 4)
        per_device = input_power(DEVICE, 6.0, 350.0, 355.0)
        assert array.total_input_power(6.0, 350.0, 355.0) == pytest.approx(
            4 * per_device
        )

    def test_total_power_per_device_faces(self):
        array = TecArray(DEVICE, 2)
        tc = np.array([350.0, 352.0])
        th = np.array([355.0, 353.0])
        expected = sum(
            input_power(DEVICE, 6.0, c, h) for c, h in zip(tc, th)
        )
        assert array.total_input_power(6.0, tc, th) == pytest.approx(expected)

    def test_face_array_length_checked(self):
        array = TecArray(DEVICE, 3)
        with pytest.raises(ValueError):
            array.total_input_power(6.0, np.array([350.0, 351.0]), 355.0)

    def test_flux_totals_obey_energy_balance(self):
        array = TecArray(DEVICE, 5)
        qc = array.total_cold_side_flux(6.0, 350.0, 355.0)
        qh = array.total_hot_side_flux(6.0, 350.0, 355.0)
        p = array.total_input_power(6.0, 350.0, 355.0)
        assert qh - qc == pytest.approx(p)


class TestSupplyVoltage:
    def test_zero_differential(self):
        array = TecArray(DEVICE, 8)
        assert array.supply_voltage(6.0) == pytest.approx(
            8 * DEVICE.electrical_resistance * 6.0
        )

    def test_with_differential(self):
        array = TecArray(DEVICE, 2)
        v = array.supply_voltage(6.0, delta_t_k=5.0)
        expected = 2 * (DEVICE.electrical_resistance * 6.0 + DEVICE.seebeck * 5.0)
        assert v == pytest.approx(expected)

    def test_per_device_differentials(self):
        array = TecArray(DEVICE, 2)
        v = array.supply_voltage(1.0, delta_t_k=np.array([0.0, 10.0]))
        expected = 2 * DEVICE.electrical_resistance + DEVICE.seebeck * 10.0
        assert v == pytest.approx(expected)

    def test_differential_length_checked(self):
        with pytest.raises(ValueError):
            TecArray(DEVICE, 3).supply_voltage(1.0, delta_t_k=np.zeros(2))
