"""The Figure 4 compact-model stamp."""

import pytest

from repro.tec.materials import TecDeviceParameters
from repro.tec.stamp import stamp_tec
from repro.thermal.network import NodeRole, ThermalNetwork


@pytest.fixture()
def net():
    network = ThermalNetwork()
    network.add_node("sil", NodeRole.SILICON)
    network.add_node("spr", NodeRole.SPREADER)
    network.add_ground_conductance(1, 1.0)
    return network


DEVICE = TecDeviceParameters()


class TestStamp:
    def test_creates_two_nodes_with_roles(self, net):
        stamp = stamp_tec(net, DEVICE, silicon_node=0, spreader_node=1, tile=7)
        assert net.nodes[stamp.cold_node].role is NodeRole.TEC_COLD
        assert net.nodes[stamp.hot_node].role is NodeRole.TEC_HOT
        assert net.nodes[stamp.cold_node].meta["tile"] == 7

    def test_conductance_wiring(self, net):
        stamp = stamp_tec(net, DEVICE, silicon_node=0, spreader_node=1, tile=0)
        conductances = dict(net.conductance_items())
        cold, hot = stamp.cold_node, stamp.hot_node
        assert conductances[(0, cold)] == pytest.approx(
            DEVICE.cold_contact_conductance
        )
        assert conductances[(1, hot)] == pytest.approx(DEVICE.hot_contact_conductance)
        assert conductances[(cold, hot)] == pytest.approx(DEVICE.thermal_conductance)

    def test_joule_half_on_each_side(self, net):
        stamp = stamp_tec(net, DEVICE, silicon_node=0, spreader_node=1, tile=0)
        joule = dict(net.joule_items())
        assert joule[stamp.cold_node] == pytest.approx(
            0.5 * DEVICE.electrical_resistance
        )
        assert joule[stamp.hot_node] == pytest.approx(
            0.5 * DEVICE.electrical_resistance
        )

    def test_peltier_signs(self, net):
        stamp = stamp_tec(net, DEVICE, silicon_node=0, spreader_node=1, tile=0)
        peltier = dict(net.peltier_items())
        assert peltier[stamp.hot_node] == pytest.approx(+DEVICE.seebeck)
        assert peltier[stamp.cold_node] == pytest.approx(-DEVICE.seebeck)

    def test_series_resistance_reduces_coupling(self, net):
        stamp = stamp_tec(
            net,
            DEVICE,
            silicon_node=0,
            spreader_node=1,
            tile=0,
            cold_series_resistance=2.0,
            hot_series_resistance=4.0,
        )
        conductances = dict(net.conductance_items())
        expected_cold = 1.0 / (1.0 / DEVICE.cold_contact_conductance + 2.0)
        expected_hot = 1.0 / (1.0 / DEVICE.hot_contact_conductance + 4.0)
        assert conductances[(0, stamp.cold_node)] == pytest.approx(expected_cold)
        assert conductances[(1, stamp.hot_node)] == pytest.approx(expected_hot)

    def test_negative_series_resistance_rejected(self, net):
        with pytest.raises(ValueError):
            stamp_tec(
                net,
                DEVICE,
                silicon_node=0,
                spreader_node=1,
                tile=0,
                cold_series_resistance=-1.0,
            )

    def test_custom_label(self, net):
        stamp = stamp_tec(
            net, DEVICE, silicon_node=0, spreader_node=1, tile=3, label="mytec"
        )
        assert net.node_name(stamp.cold_node) == "mytec.cold"
        assert net.node_name(stamp.hot_node) == "mytec.hot"

    def test_two_stamps_on_one_spreader_node(self, net):
        net.add_node("sil2", NodeRole.SILICON)
        stamp_tec(net, DEVICE, silicon_node=0, spreader_node=1, tile=0)
        stamp_tec(net, DEVICE, silicon_node=2, spreader_node=1, tile=1)
        assert len(net.indices_with_role(NodeRole.TEC_HOT)) == 2
