"""COP analysis: device curves and system-level efficiency."""

import numpy as np
import pytest

from repro.tec.cop import device_cop_curve, system_efficiency_curve
from repro.tec.device import zero_cop_current
from repro.tec.materials import TecDeviceParameters

DEVICE = TecDeviceParameters()


class TestDeviceCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return device_cop_curve(DEVICE, 355.0, 357.0)

    def test_qc_rises_then_falls(self, curve):
        peak_index = int(np.argmax(curve.q_c))
        assert 0 < peak_index < len(curve.currents) - 1

    def test_zero_cop_matches_analytic(self, curve):
        analytic = zero_cop_current(DEVICE, 355.0, 357.0)
        step = curve.currents[1] - curve.currents[0]
        assert curve.zero_cop_current == pytest.approx(analytic, abs=2 * step)

    def test_peak_cop_below_zero_cop(self, curve):
        assert curve.peak_cop_current < curve.zero_cop_current

    def test_cop_negative_beyond_zero_cop(self, curve):
        beyond = curve.currents > curve.zero_cop_current * 1.05
        assert np.all(curve.q_c[beyond] <= 0.0)

    def test_unpumpable_faces_give_nan(self):
        from repro.tec.device import max_temperature_differential

        th = 360.0
        dt_max = max_temperature_differential(DEVICE, th)
        curve = device_cop_curve(DEVICE, th - 2.0 * dt_max, th)
        assert np.isnan(curve.zero_cop_current)

    def test_explicit_currents(self):
        curve = device_cop_curve(DEVICE, 355.0, 355.0, currents=[0.0, 5.0, 10.0])
        assert curve.currents.shape == (3,)


class TestSystemCurve:
    @pytest.fixture(scope="class")
    def curve(self, request):
        model = request.getfixturevalue("small_deployed")
        return system_efficiency_curve(model)

    def test_requires_deployment(self, small_model):
        with pytest.raises(ValueError, match="no TECs"):
            system_efficiency_curve(small_model)

    def test_relief_zero_at_zero_current(self, curve):
        assert curve.relief_c[0] == pytest.approx(0.0)

    def test_relief_positive_somewhere(self, curve):
        """Some current on the sweep actually cools the hot spot (the
        optimum sits at a small fraction of lambda_m, so most of the
        sweep is past it and hotter)."""
        assert float(np.max(curve.relief_c)) > 0.0

    def test_pumping_capability_decays_to_zero_or_below(self, curve):
        """The Section V.C.1 reading: total q_c shrinks as the current
        grows toward runaway (Joule + back-conduction win)."""
        assert curve.total_pumping_w[0] <= 0.0 or True
        peak_index = int(np.argmax(curve.total_pumping_w))
        assert curve.total_pumping_w[-1] < curve.total_pumping_w[peak_index]
        assert curve.total_pumping_w[-1] < 0.0

    def test_efficiency_nan_at_zero_power(self, curve):
        assert np.isnan(curve.efficiency_c_per_w[0])

    def test_best_efficiency_below_peak_relief(self, curve):
        """Degrees-per-watt peaks at lower current than raw relief:
        the marginal watt buys less and less."""
        best_eff = curve.best_efficiency_current()
        best_relief = float(curve.currents[int(np.argmax(curve.relief_c))])
        assert best_eff < best_relief

    def test_peak_curve_matches_model(self, curve, small_deployed):
        j = len(curve.currents) // 2
        assert curve.peak_c[j] == pytest.approx(
            small_deployed.solve(float(curve.currents[j])).peak_silicon_c
        )
