"""Unit conversions: correctness, round trips, domain errors."""

import numpy as np
import pytest

from repro.utils.units import (
    ABSOLUTE_ZERO_CELSIUS,
    CELSIUS_OFFSET,
    celsius_to_kelvin,
    kelvin_to_celsius,
    w_per_cm2_to_watts_per_m2,
    watts_per_m2_to_w_per_cm2,
)


class TestCelsiusToKelvin:
    def test_freezing_point(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_ambient(self):
        assert celsius_to_kelvin(45.0) == pytest.approx(318.15)

    def test_absolute_zero_boundary(self):
        assert celsius_to_kelvin(ABSOLUTE_ZERO_CELSIUS) == pytest.approx(0.0)

    def test_below_absolute_zero_raises(self):
        with pytest.raises(ValueError, match="absolute zero"):
            celsius_to_kelvin(-274.0)

    def test_scalar_returns_float(self):
        assert isinstance(celsius_to_kelvin(25.0), float)

    def test_array_input(self):
        result = celsius_to_kelvin(np.array([0.0, 100.0]))
        assert np.allclose(result, [273.15, 373.15])

    def test_array_with_one_bad_entry_raises(self):
        with pytest.raises(ValueError):
            celsius_to_kelvin(np.array([25.0, -300.0]))


class TestKelvinToCelsius:
    def test_round_trip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(85.0)) == pytest.approx(85.0)

    def test_negative_kelvin_raises(self):
        with pytest.raises(ValueError, match="absolute zero"):
            kelvin_to_celsius(-1.0)

    def test_zero_kelvin(self):
        assert kelvin_to_celsius(0.0) == pytest.approx(-CELSIUS_OFFSET)

    def test_array_round_trip(self):
        values = np.array([250.0, 318.15, 400.0])
        assert np.allclose(celsius_to_kelvin(kelvin_to_celsius(values)), values)


class TestPowerDensity:
    def test_w_cm2_round_trip(self):
        assert watts_per_m2_to_w_per_cm2(
            w_per_cm2_to_watts_per_m2(282.4)
        ) == pytest.approx(282.4)

    def test_conversion_factor(self):
        # 1 W/cm^2 == 1e4 W/m^2
        assert w_per_cm2_to_watts_per_m2(1.0) == pytest.approx(1.0e4)
