"""Deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_same_seed_same_stream(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(7, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(7, 2)
        assert not np.array_equal(children[0].random(8), children[1].random(8))

    def test_deterministic_from_seed(self):
        a = [g.random(3) for g in spawn_rngs(9, 3)]
        b = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
