"""Text table rendering."""

import pytest

from repro.utils.tables import Column, Table


class TestColumn:
    def test_render_with_format(self):
        assert Column("x", ".2f").render(1.234) == "1.23"

    def test_render_none_as_dash(self):
        assert Column("x", ".2f").render(None) == "-"

    def test_render_nonnumeric_with_format_falls_back(self):
        assert Column("x", ".2f").render("abc") == "abc"

    def test_bad_align_rejected(self):
        with pytest.raises(ValueError):
            Column("x", align="center")


class TestTable:
    def test_row_arity_enforced(self):
        table = Table([Column("a"), Column("b")])
        with pytest.raises(ValueError, match="cells"):
            table.add_row([1])

    def test_alignment(self):
        table = Table([Column("name", align="left"), Column("v", ".1f")])
        table.add_row(["ab", 1.0])
        table.add_row(["longer", 12.5])
        lines = table.render().splitlines()
        assert lines[2].startswith("ab ")
        assert lines[3].startswith("longer")
        # right-aligned numeric column
        assert lines[2].endswith("1.0")
        assert lines[3].endswith("12.5")

    def test_header_separator_present(self):
        table = Table([Column("a")])
        table.add_row([1])
        lines = table.render().splitlines()
        assert set(lines[1]) <= {"-", "+"}

    def test_markdown_layout(self):
        table = Table([Column("a", align="left"), Column("b", ".0f")])
        table.add_row(["x", 2.0])
        md = table.render_markdown().splitlines()
        assert md[0] == "| a | b |"
        assert md[1] == "| :--- | ---: |"
        assert md[2] == "| x | 2 |"

    def test_empty_table_renders_header(self):
        table = Table([Column("only")])
        assert "only" in table.render()
