"""Argument-validation helpers: accept/reject boundaries."""

import numpy as np
import pytest

from repro.utils.validate import (
    check_finite,
    check_in_range,
    check_index,
    check_nonnegative,
    check_positive,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")

    def test_coerces_int(self):
        result = check_positive(3, "x")
        assert result == 3.0 and isinstance(result, float)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative(-1e-9, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=(False, True))
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 0.0, 1.0, inclusive=(True, False))

    def test_outside_raises_with_name(self):
        with pytest.raises(ValueError, match="fraction"):
            check_in_range(1.5, "fraction", 0.0, 1.0)


class TestCheckFinite:
    def test_accepts_finite_array(self):
        out = check_finite([1.0, 2.0], "v")
        assert isinstance(out, np.ndarray)

    def test_rejects_nan_entry(self):
        with pytest.raises(ValueError, match="v"):
            check_finite([1.0, float("nan")], "v")

    def test_rejects_inf_entry(self):
        with pytest.raises(ValueError):
            check_finite([float("inf")], "v")


class TestCheckShape:
    def test_exact_shape(self):
        arr = check_shape(np.zeros((3, 4)), (3, 4), "m")
        assert arr.shape == (3, 4)

    def test_wildcard_axis(self):
        check_shape(np.zeros((7, 4)), (None, 4), "m")

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape(np.zeros(3), (3, 1), "m")

    def test_wrong_size(self):
        with pytest.raises(ValueError, match="axis"):
            check_shape(np.zeros((3, 5)), (3, 4), "m")


class TestCheckIndex:
    def test_valid(self):
        assert check_index(2, "i", 5) == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            check_index(5, "i", 5)

    def test_rejects_negative(self):
        with pytest.raises(IndexError):
            check_index(-1, "i", 5)

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_index(1.5, "i", 5)
