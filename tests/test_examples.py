"""Smoke-run every example script.

Examples are part of the public deliverable; each must run to
completion from a clean process and print its headline result.  These
tests catch API drift that unit tests (which import modules directly)
can miss.
"""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

_CASES = {
    "quickstart.py": ("GreedyDeploy", "SwingLoss"),
    "custom_chip.py": ("deployment:", "convexity certificate"),
    "thermal_runaway_demo.py": ("lambda_m", "binary search"),
    "workload_transient.py": ("peak-of-trace reduction",),
    "design_space_exploration.py": ("best variant",),
    "closed_loop_dtm.py": ("closed-loop PI", "TEC energy"),
    "hotspot_interchange.py": ("design from files", "archived design"),
    "chiplet_package.py": ("reference cross-check", "per-chiplet currents"),
}


def _run(name):
    return subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", sorted(_CASES))
def test_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in _CASES[name]:
        assert marker in result.stdout, (name, marker)


def test_every_example_has_a_case():
    on_disk = {path.name for path in _EXAMPLES.glob("*.py")}
    assert on_disk == set(_CASES), "update _CASES when examples change"
