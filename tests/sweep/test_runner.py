"""SweepRunner backends: determinism, fault tolerance, bit-identity.

The serial backend is the reference; the process backend must
reproduce its ``values`` payloads bit-for-bit.  ``solver_stats`` and
``elapsed_s`` are execution metadata — they legitimately differ with
cache warmth and scheduling — so identity is asserted on
``(index, name, task, values)``.
"""

import pytest

from repro.sweep import (
    BACKENDS,
    Scenario,
    ScenarioError,
    ScenarioResult,
    SweepRunner,
    SweepSpec,
    run_sweep,
    validate_workers,
)
from repro.sweep import worker as sweep_worker

_HOTSPOT = tuple(
    0.55 if tile in (5, 6, 9, 10) else 0.08 for tile in range(16)
)


def _small_spec(include_failure=False):
    """A 4x4-grid sweep touching every task type (one shared geometry)."""
    scenarios = [
        # Limit just below the ~65.8 C bare peak, so GreedyDeploy must
        # cover the hot block to become feasible.
        Scenario(name="greedy", task="greedy", rows=4, cols=4,
                 power_map=_HOTSPOT, limit_c=65.25),
        Scenario(name="optimize", task="optimize", rows=4, cols=4,
                 power_map=_HOTSPOT, tec_tiles=(5, 6, 9, 10)),
        Scenario(name="solve", task="solve", rows=4, cols=4,
                 power_map=_HOTSPOT, tec_tiles=(5, 6, 9, 10), current_a=0.4),
        Scenario(name="pareto", task="pareto", rows=4, cols=4,
                 power_map=_HOTSPOT, tec_tiles=(5, 6, 9, 10), budget_w=0.05),
    ]
    if include_failure:
        # Tile 99 is out of range on a 4x4 grid: the worker's model
        # build raises IndexError, which the engine must capture.
        scenarios.insert(
            2,
            Scenario(name="broken", task="optimize", rows=4, cols=4,
                     power_map=_HOTSPOT, tec_tiles=(99,)),
        )
    return SweepSpec(scenarios=scenarios, name="small")


def _identity_view(report):
    return [(r.index, r.name, r.task, r.values) for r in report.results]


class TestRunnerConfiguration:
    def test_default_is_serial(self):
        runner = SweepRunner()
        assert runner.backend == "serial"
        assert runner.workers == 1

    @pytest.mark.parametrize("workers", [None, 1])
    def test_small_worker_counts_stay_serial(self, workers):
        assert SweepRunner(workers).backend == "serial"

    def test_multiple_workers_select_process(self):
        runner = SweepRunner(4)
        assert runner.backend == "process"
        assert runner.workers == 4

    @pytest.mark.parametrize("workers", [0, -1, -3])
    def test_nonpositive_workers_rejected(self, workers):
        """The library matches the CLI: workers <= 0 is an error, not a
        silent serial run (regression — SweepRunner(0) used to run
        serial while ``repro sweep --workers 0`` errored out)."""
        with pytest.raises(ValueError, match="positive"):
            SweepRunner(workers)
        with pytest.raises(ValueError, match="positive"):
            validate_workers(workers)

    @pytest.mark.parametrize("workers", ["two", object()])
    def test_non_integer_workers_rejected(self, workers):
        with pytest.raises(ValueError):
            validate_workers(workers)

    def test_validator_normalizes(self):
        assert validate_workers(None) is None
        assert validate_workers(3) == 3
        assert validate_workers("4") == 4

    def test_backend_override(self):
        assert SweepRunner(4, backend="serial").backend == "serial"
        assert SweepRunner(backend="process").backend == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SweepRunner(backend="threads")

    def test_backends_constant(self):
        assert BACKENDS == ("serial", "process")


class TestSerialBackend:
    @pytest.fixture(scope="class")
    def report(self):
        sweep_worker.clear_caches()
        return SweepRunner().run(_small_spec())

    def test_all_scenarios_succeed(self, report):
        assert report.ok
        assert report.num_scenarios == 4
        assert [r.name for r in report.results] == [
            "greedy", "optimize", "solve", "pareto",
        ]

    def test_values_are_plain_data(self, report):
        import json

        json.dumps([r.values for r in report.results])

    def test_solver_stats_recorded(self, report):
        merged = report.aggregate_solver_stats()
        assert merged.solves > 0
        assert merged.factorizations > 0

    def test_result_for(self, report):
        assert report.result_for("solve").values["current_a"] == 0.4
        with pytest.raises(KeyError):
            report.result_for("missing")

    def test_accepts_bare_scenario_iterable(self):
        scenarios = list(_small_spec())[:1]
        report = run_sweep(scenarios)
        assert report.ok and report.num_scenarios == 1

    def test_tasks_consistent_across_views(self, report):
        greedy = report.result_for("greedy").values
        optimize = report.result_for("optimize").values
        # The greedy deployment on this instance is the hot block, so
        # the optimize scenario re-derives the same optimum current.
        assert greedy["tec_tiles"] == [5, 6, 9, 10]
        assert greedy["current_a"] == pytest.approx(
            optimize["i_opt_a"], abs=1e-3
        )


class TestFaultTolerance:
    @pytest.fixture(scope="class", params=["serial", "process"])
    def report(self, request):
        sweep_worker.clear_caches()
        workers = 2 if request.param == "process" else None
        return SweepRunner(workers, backend=request.param).run(
            _small_spec(include_failure=True)
        )

    def test_sweep_completes_around_the_failure(self, report):
        assert not report.ok
        assert report.num_scenarios == 5
        assert len(report.results) == 4
        assert len(report.errors) == 1

    def test_error_is_structured(self, report):
        error = report.errors[0]
        assert isinstance(error, ScenarioError)
        assert error.name == "broken"
        assert error.index == 2
        assert error.error_type == "IndexError"
        assert "99" in error.message

    def test_traceback_captured(self, report):
        assert "IndexError" in report.errors[0].traceback

    def test_summary_reports_failure(self, report):
        summary = report.summary()
        assert "FAILED" in summary
        assert "broken" in summary

    def test_successful_results_unaffected(self, report):
        sweep_worker.clear_caches()
        clean = SweepRunner().run(_small_spec())
        by_name = {r.name: r for r in report.results}
        for result in clean.results:
            assert by_name[result.name].values == result.values


def _session_task_spec():
    """The two solve-session task kinds on the shared 4x4 geometry."""
    scenarios = [
        Scenario(name="transient", task="transient", rows=4, cols=4,
                 power_map=_HOTSPOT, tec_tiles=(5, 6, 9, 10),
                 current_a=0.4, dt=0.01, steps=30),
        Scenario(name="multipin", task="multipin", rows=4, cols=4,
                 power_map=_HOTSPOT, tec_tiles=(5, 6, 9, 10),
                 num_groups=2),
    ]
    return SweepSpec(scenarios=scenarios, name="session-tasks")


class TestSessionTaskKinds:
    @pytest.fixture(scope="class")
    def report(self):
        sweep_worker.clear_caches()
        return SweepRunner().run(_session_task_spec())

    def test_all_succeed(self, report):
        assert report.ok

    def test_transient_values(self, report):
        values = report.result_for("transient").values
        assert values["dt_s"] == 0.01
        assert values["steps"] == 30
        # Heating from ambient never overshoots the steady state.
        assert values["final_peak_c"] <= values["steady_peak_c"] + 1e-9
        assert values["max_peak_c"] <= values["steady_peak_c"] + 1e-9
        assert values["steady_gap_c"] == pytest.approx(
            values["steady_peak_c"] - values["final_peak_c"]
        )

    def test_transient_defaults_applied(self):
        scenario = Scenario(
            name="defaults", task="transient", rows=4, cols=4,
            power_map=_HOTSPOT, tec_tiles=(5, 6), current_a=0.2,
        )
        sweep_worker.clear_caches()
        report = SweepRunner().run([scenario])
        values = report.result_for("defaults").values
        assert values["dt_s"] == pytest.approx(1.0e-3)
        assert values["steps"] == 200

    def test_multipin_values(self, report):
        values = report.result_for("multipin").values
        assert values["num_groups"] == 2
        assert len(values["group_currents_a"]) == 2
        # Splitting the pins can only help relative to one shared pin.
        assert values["peak_c"] <= values["shared_peak_c"] + 1e-6
        assert values["improvement_c"] >= -1e-6
        assert values["evaluations"] > 0

    def test_process_backend_bit_identical(self):
        spec = _session_task_spec()
        sweep_worker.clear_caches()
        serial = SweepRunner().run(spec)
        parallel = SweepRunner(2, backend="process").run(spec)
        assert serial.ok and parallel.ok
        assert _identity_view(serial) == _identity_view(parallel)


class TestProcessBitIdentity:
    def test_small_spec_bit_identical(self):
        # backend="process" is forced: an *inferred* pool would degrade
        # to serial on a single-CPU CI host and the comparison would be
        # vacuous (see TestBackendDegradation).
        spec = _small_spec()
        sweep_worker.clear_caches()
        serial = SweepRunner().run(spec)
        parallel = SweepRunner(2, backend="process").run(spec)
        assert parallel.backend == "process"
        assert serial.ok and parallel.ok
        assert _identity_view(serial) == _identity_view(parallel)

    def test_table1_subset_bit_identical(self):
        """Two real Table I rows, serial vs a 2-worker pool."""
        spec = SweepSpec.table1(["hc02", "hc04"])
        sweep_worker.clear_caches()
        serial = SweepRunner().run(spec)
        parallel = SweepRunner(2, backend="process").run(spec)
        assert serial.ok and parallel.ok
        assert _identity_view(serial) == _identity_view(parallel)

    @pytest.mark.slow
    def test_full_table1_bit_identical_with_four_workers(self):
        """Acceptance: workers=4 matches serial on every Table I row."""
        spec = SweepSpec.table1()
        sweep_worker.clear_caches()
        serial = SweepRunner().run(spec)
        parallel = SweepRunner(4, backend="process").run(spec)
        assert serial.ok and parallel.ok
        assert parallel.workers == 4
        assert _identity_view(serial) == _identity_view(parallel)


class TestBackendDegradation:
    """Inferred process pools degrade to serial when the pool cannot pay
    for itself; forced backends never degrade.  The decision is recorded
    in ``report.metadata["runner"]``."""

    def test_constructor_semantics_unchanged(self):
        # Degradation is a run()-time decision: the constructor still
        # reports the inferred backend.
        runner = SweepRunner(4)
        assert runner.backend == "process"
        assert runner.workers == 4

    def test_single_cpu_host_degrades_inferred_pool(self):
        import unittest.mock

        from repro.sweep import runner as runner_mod

        spec = _small_spec()
        with unittest.mock.patch.object(
            runner_mod.os, "cpu_count", return_value=1
        ):
            backend, reason = SweepRunner(2)._resolve_backend(spec)
        assert backend == "serial"
        assert "single-CPU" in reason

    def test_cheap_scenarios_degrade_inferred_pool(self):
        import unittest.mock

        from repro.sweep import runner as runner_mod

        # 4x4 solves cost 16 * 2 = 32 "solve equivalents" — far below
        # the amortization threshold even on a many-core host.
        spec = SweepSpec(
            scenarios=[
                Scenario(name="s{}".format(i), task="solve", rows=4, cols=4,
                         power_map=_HOTSPOT, tec_tiles=(5,), current_a=0.1)
                for i in range(4)
            ],
            name="cheap",
        )
        with unittest.mock.patch.object(
            runner_mod.os, "cpu_count", return_value=8
        ):
            backend, reason = SweepRunner(2)._resolve_backend(spec)
        assert backend == "serial"
        assert "threshold" in reason

    def test_expensive_sweep_keeps_inferred_pool(self):
        import unittest.mock

        from repro.sweep import runner as runner_mod

        # Greedy deployments on 16x16 grids: 256 * 100 per scenario.
        spec = SweepSpec(
            scenarios=[
                Scenario(name="g", task="greedy", rows=16, cols=16,
                         power_map=tuple([0.1] * 256), limit_c=80.0),
            ],
            name="costly",
        )
        with unittest.mock.patch.object(
            runner_mod.os, "cpu_count", return_value=8
        ):
            backend, reason = SweepRunner(2)._resolve_backend(spec)
        assert backend == "process"
        assert reason == "inferred"

    def test_forced_process_backend_never_degrades(self):
        backend, reason = SweepRunner(
            2, backend="process"
        )._resolve_backend(_small_spec())
        assert backend == "process"
        assert reason == "forced"

    def test_degraded_run_records_decision_in_metadata(self):
        # On any host: either the single-CPU or the cost gate fires for
        # this cheap spec, so the inferred pool runs serial.
        sweep_worker.clear_caches()
        report = SweepRunner(2).run(_small_spec())
        assert report.backend == "serial"
        runner_meta = report.metadata["runner"]
        assert runner_meta["requested_backend"] == "process"
        assert runner_meta["requested_workers"] == 2
        assert runner_meta["backend"] == "serial"
        assert runner_meta["workers"] == 1
        assert runner_meta["degraded"] is True
        assert runner_meta["reason"].startswith("degraded")

    def test_forced_run_records_decision_in_metadata(self):
        sweep_worker.clear_caches()
        report = SweepRunner(2, backend="process").run(_small_spec())
        assert report.backend == "process"
        runner_meta = report.metadata["runner"]
        assert runner_meta["degraded"] is False
        assert runner_meta["reason"] == "forced"
        assert runner_meta["workers"] == 2
        assert runner_meta["chunk_size"] >= 1

    def test_metadata_preserves_spec_entries(self):
        spec = SweepSpec(
            scenarios=list(_small_spec())[:1],
            name="tagged",
            metadata={"origin": "unit-test"},
        )
        report = SweepRunner().run(spec)
        assert report.metadata["origin"] == "unit-test"
        assert "runner" in report.metadata

    def test_chunk_sizes(self):
        runner = SweepRunner(2, backend="process")
        # ceil(n / (workers * 4)): ~4 chunks per worker.
        assert runner._chunk_size(1) == 1
        assert runner._chunk_size(5) == 1
        assert runner._chunk_size(40) == 5
        assert runner._chunk_size(41) == 6

    def test_degradation_is_bit_identical(self):
        spec = _small_spec()
        sweep_worker.clear_caches()
        serial = SweepRunner().run(spec)
        degraded = SweepRunner(2).run(spec)
        assert degraded.backend == "serial"
        assert _identity_view(serial) == _identity_view(degraded)


class TestOrdering:
    def test_results_keep_spec_order(self):
        spec = _small_spec(include_failure=True)
        report = SweepRunner(2, backend="process").run(spec)
        indices = [r.index for r in report.results]
        assert indices == sorted(indices)
        names = {s.name: i for i, s in enumerate(spec)}
        for result in report.results:
            assert result.index == names[result.name]

    def test_report_records_backend_and_spec(self):
        report = SweepRunner().run(_small_spec())
        assert report.spec_name == "small"
        assert report.backend == "serial"
        assert isinstance(report.results[0], ScenarioResult)


def _crashing_execute(index, scenario, shared=None):
    """Pool-crash stand-in for ``worker.execute``: hard-kills the worker
    process on the marked scenario (bypassing the worker's exception
    capture) and delegates everything else."""
    if scenario.name == "crash":
        import os as worker_os

        worker_os._exit(17)
    return sweep_worker.execute(index, scenario, shared)


class TestPoolCrashPreservesResults:
    """A BrokenProcessPool mid-sweep must not discard completed results.

    Regression: the old runner's broad ``except Exception`` turned the
    crash into indistinguishable per-scenario errors, and a break
    during submission aborted the whole sweep, discarding scenarios
    that had already completed successfully.
    """

    @pytest.fixture(scope="class")
    def report(self):
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("crash injection requires the fork start method")
        scenarios = list(_small_spec())
        scenarios.insert(
            2,
            Scenario(name="crash", task="solve", rows=4, cols=4,
                     power_map=_HOTSPOT, tec_tiles=(5, 6), current_a=0.1),
        )
        spec = SweepSpec(scenarios=scenarios, name="crashy")
        sweep_worker.clear_caches()
        runner = SweepRunner(1, backend="process")
        import unittest.mock

        with unittest.mock.patch(
            "repro.sweep.runner.execute", _crashing_execute
        ):
            return runner.run(spec)

    def test_completed_results_preserved(self, report):
        # One worker executes in submission order: the two scenarios
        # before the crash completed and must keep their results.
        names = [r.name for r in report.results]
        assert "greedy" in names and "optimize" in names

    def test_unfinished_scenarios_marked_as_pool_faults(self, report):
        assert not report.ok
        faults = report.pool_faults
        assert faults, "expected pool-fault errors after the crash"
        assert {e.name for e in faults} >= {"crash"}
        for fault in faults:
            assert fault.kind == "pool"
            assert fault.traceback == ""  # no worker-side traceback exists

    def test_every_scenario_accounted_for(self, report):
        assert report.num_scenarios == 5
        indices = sorted(
            [r.index for r in report.results] + [e.index for e in report.errors]
        )
        assert indices == [0, 1, 2, 3, 4]

    def test_pool_faults_distinguished_from_scenario_faults(self):
        """In-scenario exceptions keep kind='scenario' with a traceback."""
        sweep_worker.clear_caches()
        report = SweepRunner(2, backend="process").run(
            _small_spec(include_failure=True)
        )
        assert report.pool_faults == ()
        (error,) = report.scenario_faults
        assert error.kind == "scenario"
        assert "IndexError" in error.traceback

    def test_summary_labels_pool_faults(self, report):
        summary = report.summary()
        assert "(pool fault)" in summary


class TestScenarioSolverBackends:
    def test_backend_reaches_the_problem(self):
        sweep_worker.clear_caches()
        scenario = Scenario(
            name="k", task="solve", rows=4, cols=4, power_map=_HOTSPOT,
            tec_tiles=(5, 6, 9, 10), current_a=0.4, backend="krylov",
        )
        problem = sweep_worker.problem_for(scenario)
        assert problem.solver_mode == "krylov"

    def test_backends_never_share_problems(self):
        """Two scenarios differing only in backend must get distinct
        problem instances — a warm cache must not answer a krylov
        scenario with a reuse solver."""
        sweep_worker.clear_caches()
        base = dict(task="solve", rows=4, cols=4, power_map=_HOTSPOT,
                    tec_tiles=(5, 6, 9, 10), current_a=0.4)
        reuse = sweep_worker.problem_for(Scenario(name="r", backend="reuse", **base))
        reuse.model((5, 6))  # record the geometry's network blueprint
        krylov = sweep_worker.problem_for(Scenario(name="k", backend="krylov", **base))
        assert reuse is not krylov
        assert reuse.solver_mode == "reuse"
        assert krylov.solver_mode == "krylov"
        # ... while still sharing the recorded network blueprint
        assert krylov._blueprint is not None
        assert krylov._blueprint is reuse._blueprint

    def test_backends_agree_in_a_sweep(self):
        sweep_worker.clear_caches()
        scenarios = [
            Scenario(
                name="solve/{}".format(backend or "default"),
                task="solve", rows=4, cols=4, power_map=_HOTSPOT,
                tec_tiles=(5, 6, 9, 10), current_a=0.4, backend=backend,
            )
            for backend in (None, "direct", "reuse", "krylov", "auto")
        ]
        report = run_sweep(SweepSpec(scenarios=scenarios, name="backends"))
        assert report.ok
        peaks = [r.values["peak_c"] for r in report.results]
        for peak in peaks[1:]:
            assert peak == pytest.approx(peaks[0], abs=1e-6)
