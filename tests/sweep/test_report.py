"""SweepReport aggregation, metrics and summaries (synthetic records)."""

import pytest

from repro.sweep import ScenarioError, ScenarioResult, SweepReport
from repro.thermal.solve import SolverStats


def _result(index, name="s", elapsed=1.0, stats=None):
    return ScenarioResult(
        index=index,
        name="{}{}".format(name, index),
        task="solve",
        values={"peak_c": 80.0 + index},
        elapsed_s=elapsed,
        solver_stats=stats,
    )


def _report(**overrides):
    kwargs = dict(
        spec_name="demo",
        backend="process",
        workers=4,
        results=(
            _result(0, stats={"solves": 3, "factorizations": 1}),
            _result(1, stats={"solves": 2, "factorizations": 1}),
        ),
        errors=(
            ScenarioError(
                index=2, name="bad", task="solve",
                error_type="ValueError", message="boom",
            ),
        ),
        wall_time_s=1.0,
        scenario_time_s=2.0,
    )
    kwargs.update(overrides)
    return SweepReport(**kwargs)


class TestMetrics:
    def test_counts(self):
        report = _report()
        assert report.num_scenarios == 3
        assert not report.ok

    def test_ok_without_errors(self):
        assert _report(errors=()).ok

    def test_throughput(self):
        assert _report().throughput == pytest.approx(3.0)
        assert _report(wall_time_s=0.0).throughput == 0.0

    def test_speedup(self):
        assert _report().speedup == pytest.approx(2.0)
        assert _report(wall_time_s=0.0).speedup == 1.0


class TestAggregation:
    def test_solver_stats_merged(self):
        merged = _report().aggregate_solver_stats()
        assert isinstance(merged, SolverStats)
        assert merged.solves == 5
        assert merged.factorizations == 2

    def test_missing_stats_tolerated(self):
        report = _report(results=(_result(0, stats=None),), errors=())
        assert report.aggregate_solver_stats().solves == 0

    def test_result_for_hits_and_misses(self):
        report = _report()
        assert report.result_for("s1").index == 1
        with pytest.raises(KeyError, match="bad"):
            report.result_for("bad")  # failed scenarios are not results


class TestSummary:
    def test_mentions_counts_and_backend(self):
        summary = _report().summary()
        assert "3 scenarios" in summary
        assert "2 ok" in summary
        assert "1 failed" in summary
        assert "process" in summary

    def test_lists_failures(self):
        summary = _report().summary()
        assert "FAILED [2] bad: ValueError: boom" in summary

    def test_clean_summary_has_no_failures(self):
        assert "FAILED" not in _report(errors=()).summary()
