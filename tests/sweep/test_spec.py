"""Scenario and SweepSpec validation plus the standard builders."""

import pytest

from repro.experiments.benchmarks import benchmark_names
from repro.sweep import TASKS, Scenario, SweepSpec


def _explicit(name="s", task="greedy", **overrides):
    kwargs = dict(
        name=name,
        task=task,
        rows=2,
        cols=2,
        power_map=(0.1, 0.2, 0.3, 0.4),
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestScenarioValidation:
    def test_unknown_task(self):
        with pytest.raises(ValueError, match="task"):
            Scenario(name="s", task="frobnicate", benchmark="alpha")

    def test_needs_exactly_one_geometry_missing(self):
        with pytest.raises(ValueError, match="geometry"):
            Scenario(name="s", task="greedy")

    def test_needs_exactly_one_geometry_both(self):
        with pytest.raises(ValueError, match="geometry"):
            Scenario(
                name="s", task="greedy", benchmark="alpha",
                rows=2, cols=2, power_map=(0.0,) * 4,
            )

    def test_explicit_needs_rows_and_cols(self):
        with pytest.raises(ValueError, match="rows"):
            Scenario(name="s", task="greedy", power_map=(0.0,) * 4)

    def test_power_map_length_checked(self):
        with pytest.raises(ValueError, match="entries"):
            _explicit(power_map=(0.1, 0.2, 0.3))

    def test_power_map_coerced_to_float_tuple(self):
        scenario = _explicit(power_map=[0, 1, 2, 3])
        assert scenario.power_map == (0.0, 1.0, 2.0, 3.0)

    def test_power_scale_positive(self):
        with pytest.raises(ValueError, match="power_scale"):
            _explicit(power_scale=0.0)

    @pytest.mark.parametrize(
        "task", ["optimize", "solve", "pareto", "transient", "multipin"]
    )
    def test_deployed_tasks_need_tec_tiles(self, task):
        with pytest.raises(ValueError, match="tec_tiles"):
            _explicit(task=task, current_a=1.0, budget_w=1.0)

    def test_tec_tiles_normalized(self):
        scenario = _explicit(task="optimize", tec_tiles=[3, 1, 3, 0])
        assert scenario.tec_tiles == (0, 1, 3)

    def test_backend_defaults_to_none(self):
        assert _explicit().backend is None

    @pytest.mark.parametrize("backend", ["direct", "reuse", "krylov", "auto"])
    def test_valid_backends_accepted(self, backend):
        assert _explicit(backend=backend).backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            _explicit(backend="jacobi")

    def test_engine_defaults_to_none(self):
        assert _explicit().engine is None
        assert _explicit().max_rounds is None

    @pytest.mark.parametrize("engine", ["cold", "incremental"])
    def test_valid_engines_accepted(self, engine):
        assert _explicit(engine=engine).engine == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            _explicit(engine="warp")

    def test_max_rounds_coerced_and_validated(self):
        assert _explicit(max_rounds="3").max_rounds == 3
        assert _explicit(max_rounds=0).max_rounds == 0
        with pytest.raises(ValueError, match="max_rounds"):
            _explicit(max_rounds=-1)

    def test_solve_needs_current(self):
        with pytest.raises(ValueError, match="current_a"):
            _explicit(task="solve", tec_tiles=(0,))

    def test_pareto_needs_budget(self):
        with pytest.raises(ValueError, match="budget_w"):
            _explicit(task="pareto", tec_tiles=(0,))

    def test_pareto_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="budget_w"):
            _explicit(task="pareto", tec_tiles=(0,), budget_w=-1.0)

    def test_transient_needs_current(self):
        with pytest.raises(ValueError, match="current_a"):
            _explicit(task="transient", tec_tiles=(0,))

    def test_dt_coerced_and_validated(self):
        scenario = _explicit(
            task="transient", tec_tiles=(0,), current_a=0.5, dt="0.01"
        )
        assert scenario.dt == 0.01
        with pytest.raises(ValueError, match="dt"):
            _explicit(task="transient", tec_tiles=(0,), current_a=0.5, dt=0.0)

    def test_steps_coerced_and_validated(self):
        scenario = _explicit(
            task="transient", tec_tiles=(0,), current_a=0.5, steps="50"
        )
        assert scenario.steps == 50
        with pytest.raises(ValueError, match="steps"):
            _explicit(
                task="transient", tec_tiles=(0,), current_a=0.5, steps=0
            )

    def test_rom_mode_validated(self):
        scenario = _explicit(
            task="transient", tec_tiles=(0,), current_a=0.5, rom="always"
        )
        assert scenario.rom == "always"
        with pytest.raises(ValueError, match="rom"):
            _explicit(
                task="transient", tec_tiles=(0,), current_a=0.5,
                rom="sometimes",
            )

    def test_rom_dim_coerced_and_validated(self):
        scenario = _explicit(
            task="transient", tec_tiles=(0,), current_a=0.5, rom_dim="16"
        )
        assert scenario.rom_dim == 16
        with pytest.raises(ValueError, match="rom_dim"):
            _explicit(
                task="transient", tec_tiles=(0,), current_a=0.5, rom_dim=0
            )

    def test_rom_tol_coerced_and_validated(self):
        scenario = _explicit(
            task="transient", tec_tiles=(0,), current_a=0.5, rom_tol="1e-4"
        )
        assert scenario.rom_tol == 1e-4
        with pytest.raises(ValueError, match="rom_tol"):
            _explicit(
                task="transient", tec_tiles=(0,), current_a=0.5, rom_tol=0.0
            )

    def test_rom_fields_default_to_none(self):
        scenario = _explicit(task="transient", tec_tiles=(0,), current_a=0.5)
        assert scenario.rom is None
        assert scenario.rom_dim is None
        assert scenario.rom_tol is None

    def test_num_groups_bounded_by_deployment(self):
        scenario = _explicit(
            task="multipin", tec_tiles=(0, 1), num_groups="2"
        )
        assert scenario.num_groups == 2
        with pytest.raises(ValueError, match="num_groups"):
            _explicit(task="multipin", tec_tiles=(0, 1), num_groups=3)
        with pytest.raises(ValueError, match="num_groups"):
            _explicit(task="multipin", tec_tiles=(0, 1), num_groups=0)

    def test_all_tasks_constructible(self):
        extras = {
            "optimize": dict(tec_tiles=(0,)),
            "solve": dict(tec_tiles=(0,), current_a=0.5),
            "pareto": dict(tec_tiles=(0,), budget_w=0.0),
            "transient": dict(tec_tiles=(0,), current_a=0.5),
            "multipin": dict(tec_tiles=(0,), num_groups=1),
        }
        for task in TASKS:
            scenario = _explicit(task=task, **extras.get(task, {}))
            assert scenario.task == task


class TestGeometryKey:
    def test_limit_siblings_share_key(self):
        a = _explicit(limit_c=80.0)
        b = _explicit(limit_c=90.0)
        assert a.geometry_key() == b.geometry_key()

    def test_deployment_does_not_change_key(self):
        a = _explicit(task="optimize", tec_tiles=(0,))
        b = _explicit(task="optimize", tec_tiles=(1, 2))
        assert a.geometry_key() == b.geometry_key()

    @pytest.mark.parametrize(
        "override",
        [
            dict(power_scale=1.1),
            dict(seebeck_factor=0.5),
            dict(resistance_factor=2.0),
            dict(power_map=(0.1, 0.2, 0.3, 0.5)),
        ],
    )
    def test_package_changes_change_key(self, override):
        assert _explicit().geometry_key() != _explicit(**override).geometry_key()


class TestSweepSpec:
    def test_rejects_non_scenarios(self):
        with pytest.raises(TypeError, match="Scenario"):
            SweepSpec(scenarios=["not a scenario"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(scenarios=[_explicit("same"), _explicit("same")])

    def test_len_and_iter(self):
        spec = SweepSpec(scenarios=[_explicit("a"), _explicit("b")])
        assert len(spec) == 2
        assert [s.name for s in spec] == ["a", "b"]

    def test_geometry_keys_deduplicated(self):
        spec = SweepSpec(
            scenarios=[
                _explicit("a"),
                _explicit("b"),
                _explicit("c", power_scale=1.2),
            ]
        )
        assert len(spec.geometry_keys()) == 2

    def test_with_name(self):
        spec = SweepSpec(scenarios=[_explicit()], name="original")
        renamed = spec.with_name("renamed")
        assert renamed.name == "renamed"
        assert renamed.scenarios == spec.scenarios


class TestBuilders:
    def test_table1_defaults_to_all_benchmarks(self):
        spec = SweepSpec.table1()
        assert [s.name for s in spec] == benchmark_names()
        assert all(s.task == "table1" for s in spec)
        assert all(s.benchmark == s.name for s in spec)

    def test_table1_subset_keeps_order(self):
        spec = SweepSpec.table1(["hc02", "alpha"])
        assert [s.name for s in spec] == ["hc02", "alpha"]

    def test_power_scaling(self):
        spec = SweepSpec.power_scaling("alpha", factors=(0.9, 1.1), limit_c=80.0)
        assert [s.power_scale for s in spec] == [0.9, 1.1]
        assert all(s.task == "greedy" and s.limit_c == 80.0 for s in spec)

    def test_device_grid_is_full_product(self):
        spec = SweepSpec.device_grid(
            "alpha", (3, 4), seebeck_factors=(0.5, 1.0),
            resistance_factors=(1.0, 2.0, 4.0),
        )
        assert len(spec) == 6
        assert all(s.task == "optimize" and s.tec_tiles == (3, 4) for s in spec)
        pairs = {(s.seebeck_factor, s.resistance_factor) for s in spec}
        assert len(pairs) == 6

    def test_budget_sweep_sorted_ascending(self):
        spec = SweepSpec.budget_sweep("alpha", (3,), [1.0, 0.0, 0.5])
        assert [s.budget_w for s in spec] == [0.0, 0.5, 1.0]
        assert all(s.task == "pareto" for s in spec)

    def test_budget_sweep_rejects_empty(self):
        with pytest.raises(ValueError, match="budget"):
            SweepSpec.budget_sweep("alpha", (3,), [])

    def test_solve_grid_cross_product(self):
        spec = SweepSpec.solve_grid(
            ["alpha", "hc01"],
            [("a", (0,)), ("b", (1, 2))],
            [0.5, 1.0],
            power_scales=(1.0, 1.1),
        )
        assert len(spec) == 2 * 2 * 2 * 2
        assert all(s.task == "solve" for s in spec)

    def test_solve_grid_default_backend_unset(self):
        spec = SweepSpec.solve_grid(["alpha"], [("a", (0,))], [0.5])
        assert all(s.backend is None for s in spec)

    def test_solve_grid_backends_axis(self):
        spec = SweepSpec.solve_grid(
            ["alpha"], [("a", (0,))], [0.5],
            backends=("reuse", "krylov"),
        )
        assert len(spec) == 2
        assert [s.backend for s in spec] == ["reuse", "krylov"]
        # backend names must keep scenario names unique
        assert len({s.name for s in spec}) == 2

    def test_with_backend_pins_every_scenario(self):
        spec = SweepSpec.power_scaling("alpha", factors=(0.9, 1.1))
        pinned = spec.with_backend("krylov")
        assert all(s.backend == "krylov" for s in pinned)
        assert all(s.backend is None for s in spec)  # original untouched

    def test_with_backend_validates(self):
        spec = SweepSpec.power_scaling("alpha", factors=(1.0,))
        with pytest.raises(ValueError, match="backend"):
            spec.with_backend("jacobi")
