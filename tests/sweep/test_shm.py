"""Shared-memory blueprint broadcast: lifecycle, identity, zero-copy.

Three promises of the :mod:`repro.sweep.shm` layer are pinned here:

* **lifecycle** — every published segment is unlinked when the sweep
  finishes, even when a worker hard-crashes mid-sweep; no ``/dev/shm``
  entry (or resource-tracker registration) outlives the run;
* **bit-identity** — a worker seeded from a shared segment returns
  byte-for-byte the ``values`` it would produce rebuilding the problem
  from its scenario payload (blueprint replay is bitwise);
* **zero-copy dispatch** — task submissions carry only tiny
  :class:`~repro.sweep.shm.SharedProblemHandle` records; the pickled
  problem (with its recorded blueprint) crosses the process boundary
  once per geometry, through the segment, not per task.
"""

import pickle

import pytest

from repro.sweep import Scenario, SweepRunner, SweepSpec
from repro.sweep import shm
from repro.sweep import worker as sweep_worker

_HOTSPOT = tuple(
    0.55 if tile in (5, 6, 9, 10) else 0.08 for tile in range(16)
)


def _solve_scenario(name, current_a):
    return Scenario(
        name=name, task="solve", rows=4, cols=4, power_map=_HOTSPOT,
        tec_tiles=(5, 6, 9, 10), current_a=current_a,
    )


def _shared_spec():
    """Four solve scenarios on one geometry — eligible for broadcast."""
    scenarios = [
        _solve_scenario("i{}".format(j), 0.1 * (j + 1)) for j in range(4)
    ]
    return SweepSpec(scenarios=scenarios, name="shared")


def _shm_names():
    import os

    try:
        return {
            name for name in os.listdir("/dev/shm") if name.startswith("psm_")
        }
    except FileNotFoundError:  # non-Linux: fall back to the registry
        return set(shm.published_segments())


@pytest.fixture(autouse=True)
def _clean_caches():
    sweep_worker.clear_caches()
    yield
    sweep_worker.clear_caches()


class TestHandleLifecycle:
    def test_publish_retain_release_refcounting(self):
        problem = sweep_worker.problem_for(_solve_scenario("a", 0.1))
        handle = shm.publish(problem)
        assert handle.name in shm.published_segments()
        shm.retain(handle)
        shm.release(handle)  # drops the retain; publish ref remains
        assert handle.name in shm.published_segments()
        shm.release(handle)
        assert handle.name not in shm.published_segments()
        assert handle.name not in _shm_names()

    def test_release_is_idempotent(self):
        problem = sweep_worker.problem_for(_solve_scenario("a", 0.1))
        handle = shm.publish(problem)
        shm.release(handle)
        shm.release(handle)  # no-op, not an error
        assert handle.name not in shm.published_segments()

    def test_retain_requires_local_publication(self):
        with pytest.raises(KeyError):
            shm.retain(shm.SharedProblemHandle(name="psm_nope", size=8))

    def test_load_of_released_segment_is_file_not_found(self):
        problem = sweep_worker.problem_for(_solve_scenario("a", 0.1))
        handle = shm.publish(problem)
        shm.release(handle)
        with pytest.raises(FileNotFoundError):
            shm.load(handle)

    def test_atexit_sweep_unlinks_stragglers(self):
        problem = sweep_worker.problem_for(_solve_scenario("a", 0.1))
        handle = shm.publish(problem)
        shm._unlink_all()
        assert shm.published_segments() == []
        assert handle.name not in _shm_names()


class TestRunnerBroadcast:
    def test_sweep_leaves_no_segments_behind(self):
        before = _shm_names()
        report = SweepRunner(2, backend="process").run(_shared_spec())
        assert report.ok
        assert shm.published_segments() == []
        assert _shm_names() == before

    def test_worker_crash_leaves_no_segments_behind(self, monkeypatch):
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("crash injection requires the fork start method")
        from tests.sweep.test_runner import _crashing_execute

        scenarios = list(_shared_spec())
        scenarios.insert(2, _solve_scenario("crash", 0.05))
        spec = SweepSpec(scenarios=scenarios, name="crashy-shared")
        before = _shm_names()
        monkeypatch.setattr("repro.sweep.runner.execute", _crashing_execute)
        report = SweepRunner(1, backend="process").run(spec)
        assert not report.ok  # the crash was recorded as a pool fault
        assert shm.published_segments() == []
        assert _shm_names() == before

    def test_single_scenario_geometries_are_not_published(self):
        """Broadcast only pays off past one scenario per geometry."""
        runner = SweepRunner(2, backend="process")
        handles = runner._publish_blueprints(
            list(enumerate([_solve_scenario("solo", 0.1)]))
        )
        assert handles == {}

    def test_publish_covers_multi_scenario_geometries(self):
        runner = SweepRunner(2, backend="process")
        scenarios = list(_shared_spec())
        handles = runner._publish_blueprints(list(enumerate(scenarios)))
        try:
            assert set(handles) == {scenarios[0].geometry_key()}
        finally:
            for handle in handles.values():
                shm.release(handle)

    def test_share_blueprints_false_disables_publication(self):
        runner = SweepRunner(2, backend="process", share_blueprints=False)
        before = _shm_names()
        report = runner.run(_shared_spec())
        assert report.ok
        assert _shm_names() == before


class TestBroadcastBitIdentity:
    def test_shared_replay_matches_pickled_path(self):
        """A worker seeded over shm answers bit-identically to one that
        rebuilt the problem from the scenario payload."""
        from tests.sweep.test_runner import _identity_view

        spec = _shared_spec()
        sweep_worker.clear_caches()
        pickled = SweepRunner(
            2, backend="process", share_blueprints=False
        ).run(spec)
        sweep_worker.clear_caches()
        shared = SweepRunner(2, backend="process").run(spec)
        assert pickled.ok and shared.ok
        assert _identity_view(pickled) == _identity_view(shared)

    def test_loaded_problem_carries_breadcrumb_and_blueprint(self):
        scenario = _solve_scenario("a", 0.1)
        problem = sweep_worker.problem_for(scenario)
        problem.model(())  # record the geometry's network blueprint
        handle = shm.publish(problem)
        try:
            loaded = shm.load(handle)
            assert loaded._from_shared_memory is True
            assert loaded._blueprint is not None
            assert shm.load(handle) is loaded  # cached per process
        finally:
            shm.release(handle)
            shm.clear_worker_cache()

    def test_worker_seeds_geometry_cache_from_handles(self):
        scenario = _solve_scenario("a", 0.1)
        problem = sweep_worker.problem_for(scenario)
        problem.model(())
        handle = shm.publish(problem)
        key = scenario.geometry_key()
        try:
            sweep_worker.clear_caches()
            sweep_worker.install_shared_handles({key: handle})
            seeded = sweep_worker.problem_for(scenario)
            # The geometry cache holds the broadcast problem; the
            # returned limit/backend sibling shares its blueprint.
            base = sweep_worker._GEOMETRY[key]
            assert base._from_shared_memory is True
            assert seeded._blueprint is base._blueprint
            assert seeded._blueprint is not None
        finally:
            shm.release(handle)
            sweep_worker.clear_caches()

    def test_missing_segment_falls_back_to_rebuild(self):
        scenario = _solve_scenario("a", 0.1)
        key = scenario.geometry_key()
        sweep_worker.install_shared_handles(
            {key: shm.SharedProblemHandle(name="psm_gone", size=64)}
        )
        problem = sweep_worker.problem_for(scenario)  # no exception
        assert not getattr(problem, "_from_shared_memory", False)


class TestZeroCopyDispatch:
    def test_handles_are_tiny_compared_to_problems(self):
        """Task payloads ship a name+size record, not the blueprint."""
        problem = sweep_worker.problem_for(_solve_scenario("a", 0.1))
        problem.model(())
        handle = shm.publish(problem)
        try:
            handle_bytes = len(pickle.dumps(handle))
            problem_bytes = len(pickle.dumps(problem))
            assert handle_bytes < 256
            assert problem_bytes > 50 * handle_bytes
        finally:
            shm.release(handle)

    def test_execute_accepts_and_installs_handles(self):
        scenario = _solve_scenario("a", 0.1)
        problem = sweep_worker.problem_for(scenario)
        problem.model(())
        handle = shm.publish(problem)
        key = scenario.geometry_key()
        try:
            sweep_worker.clear_caches()
            result = sweep_worker.execute(0, scenario, {key: handle})
            assert result.values["peak_c"] > 0.0
            assert sweep_worker._GEOMETRY[key]._from_shared_memory is True
        finally:
            shm.release(handle)
            sweep_worker.clear_caches()
