"""The ASGI app: routing, warm-pool sharing, batching bit-identity,
eviction accounting, and the process tier."""

import asyncio

from repro.sweep import worker
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import Scenario, SweepSpec

from tests.serve.helpers import SMALL_CHIP, asgi_request, small_solve_body, with_app


def _small_scenario(**overrides):
    fields = dict(
        name="ref", task="solve",
        rows=SMALL_CHIP["rows"], cols=SMALL_CHIP["cols"],
        power_map=tuple(SMALL_CHIP["power_map"]),
        tec_tiles=tuple(SMALL_CHIP["tec_tiles"]),
        current_a=0.8,
    )
    fields.update(overrides)
    return Scenario(**fields)


def _bare_peak_c():
    scenario = _small_scenario(name="bare", tec_tiles=(), current_a=0.0)
    return worker.execute(0, scenario).values["peak_c"]


class TestRouting:
    def test_healthz(self):
        async def scenario(app):
            return await asgi_request(app, "GET", "/healthz")

        status, body = with_app(scenario)
        assert status == 200
        assert body["status"] == "ok"

    def test_unknown_endpoint_404(self):
        async def scenario(app):
            return await asgi_request(app, "POST", "/nope", {})

        status, body = with_app(scenario)
        assert status == 404
        assert "no such endpoint" in body["error"]

    def test_wrong_method_405(self):
        async def scenario(app):
            return await asgi_request(app, "GET", "/solve")

        status, body = with_app(scenario)
        assert status == 405

    def test_schema_error_400(self):
        async def scenario(app):
            return await asgi_request(app, "POST", "/solve", {"rows": 4})

        status, body = with_app(scenario)
        assert status == 400
        assert "geometry" in body["error"] or "tec_tiles" in body["error"]

    def test_trailing_slash_is_tolerated(self):
        async def scenario(app):
            return await asgi_request(app, "GET", "/healthz/")

        status, _ = with_app(scenario)
        assert status == 200


class TestWarmPoolSharing:
    def test_concurrent_same_chip_requests_share_one_session(self):
        """Two concurrent same-blueprint requests land on one warm
        session: the pool holds a single entry and the repeated
        request is answered from cache (``cache_hits > 0``)."""

        async def scenario(app):
            body = small_solve_body()
            warmup = await asgi_request(app, "POST", "/solve", body)
            concurrent = await asyncio.gather(
                asgi_request(app, "POST", "/solve", body),
                asgi_request(app, "POST", "/solve", body),
            )
            stats = await asgi_request(app, "GET", "/stats")
            return warmup, concurrent, stats

        warmup, concurrent, stats = with_app(scenario, batch_window_s=0.02)
        status, first = warmup
        assert status == 200
        assert first["results"][0]["pool"]["hit"] is False
        for status, body in concurrent:
            assert status == 200
            result = body["results"][0]
            assert result["pool"]["hit"] is True
            assert result["cache_hits"] > 0
        # One chip, one warm session, no rebuilds.
        pool_stats = stats[1]["pool"]
        assert len(pool_stats["entries"]) == 1
        assert pool_stats["misses"] == 1
        assert pool_stats["hits"] >= 1
        # All three requests returned the same temperatures.
        peaks = {
            body["results"][0]["values"]["peak_c"]
            for _, body in [warmup] + concurrent
        }
        assert len(peaks) == 1

    def test_disabled_pool_always_builds_cold(self):
        async def scenario(app):
            body = small_solve_body()
            first = await asgi_request(app, "POST", "/solve", body)
            second = await asgi_request(app, "POST", "/solve", body)
            stats = await asgi_request(app, "GET", "/stats")
            return first, second, stats

        first, second, stats = with_app(scenario, pool_size=0)
        for status, body in (first, second):
            assert status == 200
            assert body["results"][0]["pool"]["hit"] is False
        pool_stats = stats[1]["pool"]
        assert pool_stats["entries"] == []
        assert pool_stats["misses"] == 2
        # Cold and warm paths must agree bitwise.
        assert (
            first[1]["results"][0]["values"]
            == second[1]["results"][0]["values"]
        )


class TestBatchingBitIdentity:
    def test_batched_multi_current_matches_serial_worker(self):
        currents = [0.2, 0.5, 0.8, 1.1]

        async def scenario(app):
            body = small_solve_body()
            del body["current_a"]
            body["currents_a"] = currents
            return await asgi_request(app, "POST", "/solve", body)

        status, body = with_app(scenario, batch_window_s=0.02)
        assert status == 200
        assert body["count"] == len(currents)
        for current, result in zip(currents, body["results"]):
            reference = worker.execute(
                0, _small_scenario(current_a=current)
            ).values
            assert result["values"] == reference

    def test_duplicate_points_coalesce_to_one_solve(self):
        async def scenario(app):
            body = small_solve_body()
            del body["current_a"]
            body["currents_a"] = [0.7, 0.7, 0.7]
            response = await asgi_request(app, "POST", "/solve", body)
            stats = await asgi_request(app, "GET", "/stats")
            return response, stats

        (status, body), (_, stats) = with_app(scenario, batch_window_s=0.02)
        assert status == 200
        results = body["results"]
        assert [r["coalesced"] for r in results] == [False, True, True]
        assert len({r["values"]["peak_c"] for r in results}) == 1
        # One batch, one underlying solve for three requested points.
        assert stats["batcher"]["batches"] == 1


class TestEvictionAccounting:
    def test_eviction_closes_stats_cleanly(self):
        async def scenario(app):
            chip_a = small_solve_body()
            chip_b = small_solve_body(power_scale=1.2)
            await asgi_request(app, "POST", "/solve", chip_a)
            _, before = await asgi_request(app, "GET", "/stats")
            await asgi_request(app, "POST", "/solve", chip_b)  # evicts chip A
            _, after = await asgi_request(app, "GET", "/stats")
            return before, after

        before, after = with_app(scenario, pool_size=1)
        assert len(before["pool"]["entries"]) == 1
        assert len(after["pool"]["entries"]) == 1
        assert after["pool"]["evictions"] == 1
        assert after["pool"]["retired_entries"] == 1
        # The evicted session's counters moved into the retired
        # aggregate: lifetime totals never shrink.
        solves_before = before["pool"]["lifetime_solver_stats"]["solves"]
        solves_after = after["pool"]["lifetime_solver_stats"]["solves"]
        assert after["pool"]["retired_solver_stats"]["solves"] > 0
        assert solves_after >= solves_before


class TestTransient:
    def test_matches_serial_worker(self):
        scenario_ref = _small_scenario(
            name="transient", task="transient", dt=1e-3, steps=8
        )

        async def scenario(app):
            body = small_solve_body(dt=1e-3, steps=8)
            return await asgi_request(app, "POST", "/transient", body)

        status, body = with_app(scenario)
        assert status == 200
        assert body["values"] == worker.execute(0, scenario_ref).values


class TestProcessTier:
    def test_deploy_matches_serial_worker(self):
        limit_c = _bare_peak_c() - 0.5
        chip = {
            "rows": SMALL_CHIP["rows"],
            "cols": SMALL_CHIP["cols"],
            "power_map": list(SMALL_CHIP["power_map"]),
            "limit_c": limit_c,
        }

        async def scenario(app):
            return await asgi_request(app, "POST", "/deploy", chip)

        status, body = with_app(scenario, workers=1)
        assert status == 200
        reference = worker.execute(
            0,
            Scenario(
                name="deploy", task="greedy",
                rows=chip["rows"], cols=chip["cols"],
                power_map=tuple(chip["power_map"]), limit_c=limit_c,
            ),
        ).values
        assert body["values"] == reference
        assert body["values"]["feasible"] is True

    def test_in_scenario_failure_is_a_422(self):
        chip = {
            "rows": SMALL_CHIP["rows"],
            "cols": SMALL_CHIP["cols"],
            "power_map": list(SMALL_CHIP["power_map"]),
            "limit_c": 10.0,  # below ambient: problem construction raises
        }

        async def scenario(app):
            return await asgi_request(app, "POST", "/deploy", chip)

        status, body = with_app(scenario, workers=1)
        assert status == 422
        assert body["kind"] == "scenario"
        assert body["error_type"] == "ValueError"
        assert body["traceback"]

    def test_sweep_matches_serial_runner(self):
        spec = SweepSpec(
            scenarios=(
                _small_scenario(name="i-low", current_a=0.3),
                _small_scenario(name="i-high", current_a=0.9),
            ),
            name="served",
        )
        wire = {
            "name": spec.name,
            "scenarios": [
                {
                    "name": s.name, "task": s.task, "rows": s.rows,
                    "cols": s.cols, "power_map": list(s.power_map),
                    "tec_tiles": list(s.tec_tiles), "current_a": s.current_a,
                }
                for s in spec
            ],
        }

        async def scenario(app):
            return await asgi_request(app, "POST", "/sweep", wire)

        status, body = with_app(scenario, workers=1)
        assert status == 200
        reference = SweepRunner(None).run(spec)
        assert body["spec_name"] == "served"
        assert body["errors"] == []
        served = {r["name"]: r["values"] for r in body["results"]}
        expected = {r.name: r.values for r in reference.results}
        assert served == expected
        assert "summary" in body


class TestDefaultBackend:
    """``ServeConfig.default_backend`` fills unset request backends.

    The default participates in the warm-pool blueprint key (a request
    answered by a krylov session must never share a pool entry with a
    reuse one), and an explicit per-request ``backend`` always wins
    over the server default.
    """

    def test_invalid_default_backend_rejected(self):
        import pytest

        from repro.serve import ServeConfig

        with pytest.raises(ValueError, match="default_backend"):
            ServeConfig(default_backend="jacobi")

    def test_stats_expose_the_default(self):
        async def scenario(app):
            return await asgi_request(app, "GET", "/stats")

        _, stats = with_app(scenario, default_backend="cholesky")
        assert stats["config"]["default_backend"] == "cholesky"

    def test_default_backend_enters_the_pool_key(self):
        body = small_solve_body()

        async def scenario(app):
            return await asgi_request(app, "POST", "/solve", body)

        _, defaulted = with_app(scenario, default_backend="krylov")
        _, explicit = with_app(
            scenario_with(body, backend="krylov"), default_backend=None
        )
        _, plain = with_app(scenario, default_backend=None)
        assert defaulted["pool_key"] == explicit["pool_key"]
        assert defaulted["pool_key"] != plain["pool_key"]

    def test_explicit_backend_wins_over_default(self):
        async def scenario(app):
            return await asgi_request(
                app, "POST", "/solve", small_solve_body(backend="reuse")
            )

        _, explicit = with_app(scenario, default_backend="krylov")
        _, plain_reuse = with_app(scenario, default_backend=None)
        assert explicit["pool_key"] == plain_reuse["pool_key"]

    def test_defaulted_solve_matches_explicit_values(self):
        async def defaulted(app):
            return await asgi_request(
                app, "POST", "/solve", small_solve_body()
            )

        async def explicit(app):
            return await asgi_request(
                app, "POST", "/solve", small_solve_body(backend="cholesky")
            )

        _, a = with_app(defaulted, default_backend="cholesky")
        _, b = with_app(explicit)
        assert a["results"][0]["values"] == b["results"][0]["values"]


def scenario_with(body, **overrides):
    request = dict(body, **overrides)

    async def scenario(app):
        return await asgi_request(app, "POST", "/solve", request)

    return scenario
