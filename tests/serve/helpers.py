"""Shared helpers for the serve-layer tests.

``asgi_request`` drives the app in-process through the raw ASGI
interface (no sockets); ``with_app`` runs an async scenario against a
fresh app inside one event loop and guarantees executor teardown.
Both keep every request of a test on a single loop, which is what the
pool's per-entry ``asyncio.Lock`` objects require.
"""

import asyncio
import json

from repro.serve import ServeConfig, create_app

#: A 4x4 chip with a 2x2 hot block — small enough that a cold
#: build-plus-solve is a few milliseconds.
SMALL_CHIP = {
    "rows": 4,
    "cols": 4,
    "power_map": [0.08] * 16,
    "tec_tiles": [5, 6, 9, 10],
}
for _tile in SMALL_CHIP["tec_tiles"]:
    SMALL_CHIP["power_map"][_tile] = 0.55


def small_solve_body(**overrides):
    body = {
        "rows": SMALL_CHIP["rows"],
        "cols": SMALL_CHIP["cols"],
        "power_map": list(SMALL_CHIP["power_map"]),
        "tec_tiles": list(SMALL_CHIP["tec_tiles"]),
        "current_a": 0.8,
    }
    body.update(overrides)
    return body


async def asgi_request(app, method, path, payload=None):
    """One in-process request; returns ``(status, parsed_body)``."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    inbox = [{"type": "http.request", "body": body, "more_body": False}]
    outbox = []

    async def receive():
        if inbox:
            return inbox.pop(0)
        return {"type": "http.disconnect"}

    async def send(message):
        outbox.append(message)

    scope = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method,
        "scheme": "http",
        "path": path,
        "query_string": b"",
        "headers": [(b"content-type", b"application/json")] if payload is not None else [],
        "client": ("testclient", 0),
        "server": ("testserver", 80),
    }
    await app(scope, receive, send)
    status = next(
        message["status"] for message in outbox
        if message["type"] == "http.response.start"
    )
    raw = b"".join(
        message.get("body", b"") for message in outbox
        if message["type"] == "http.response.body"
    )
    return status, json.loads(raw)


def with_app(scenario, **config_kwargs):
    """Run ``await scenario(app)`` on a fresh app in one event loop."""

    async def main():
        app = create_app(ServeConfig(**config_kwargs))
        try:
            return await scenario(app)
        finally:
            await app.shutdown()

    return asyncio.run(main())
