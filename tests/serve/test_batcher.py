"""Request batcher: coalescing, flush triggers, failure fan-out."""

import asyncio

import pytest

from repro.serve.batcher import RequestBatcher


class _RecordingExecutor:
    """Echo executor that records every batch it receives."""

    def __init__(self, delay_s=0.0, fail=False):
        self.calls = []
        self.delay_s = delay_s
        self.fail = fail

    async def __call__(self, key, scenarios):
        self.calls.append((key, list(scenarios)))
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("executor blew up")
        return ["{}:{}".format(key, scenario) for scenario in scenarios]


class TestCoalescing:
    def test_same_key_submissions_share_one_batch(self):
        async def scenario():
            executor = _RecordingExecutor()
            batcher = RequestBatcher(executor, window_s=0.01)
            results = await asyncio.gather(
                batcher.submit("k", "a"), batcher.submit("k", "b")
            )
            return executor, batcher, results

        executor, batcher, results = asyncio.run(scenario())
        assert len(executor.calls) == 1
        assert executor.calls[0] == ("k", ["a", "b"])
        assert results == ["k:a", "k:b"]
        assert batcher.stats()["coalesced_requests"] == 1

    def test_different_keys_do_not_share(self):
        async def scenario():
            executor = _RecordingExecutor()
            batcher = RequestBatcher(executor, window_s=0.01)
            await asyncio.gather(
                batcher.submit("k1", "a"), batcher.submit("k2", "b")
            )
            return executor

        executor = asyncio.run(scenario())
        assert sorted(key for key, _ in executor.calls) == ["k1", "k2"]

    def test_zero_window_coalesces_within_one_tick(self):
        async def scenario():
            executor = _RecordingExecutor()
            batcher = RequestBatcher(executor, window_s=0.0)
            await asyncio.gather(*(batcher.submit("k", i) for i in range(3)))
            return executor

        executor = asyncio.run(scenario())
        assert len(executor.calls) == 1
        assert executor.calls[0][1] == [0, 1, 2]

    def test_sequential_submissions_run_separately(self):
        async def scenario():
            executor = _RecordingExecutor()
            batcher = RequestBatcher(executor, window_s=0.0)
            await batcher.submit("k", "first")
            await batcher.submit("k", "second")
            return executor

        executor = asyncio.run(scenario())
        assert len(executor.calls) == 2


class TestFlushTriggers:
    def test_max_batch_flushes_immediately(self):
        async def scenario():
            executor = _RecordingExecutor()
            # A window long enough that only the size cap can flush.
            batcher = RequestBatcher(executor, window_s=30.0, max_batch=2)
            results = await asyncio.wait_for(
                asyncio.gather(
                    batcher.submit("k", "a"), batcher.submit("k", "b")
                ),
                timeout=5.0,
            )
            return executor, results

        executor, results = asyncio.run(scenario())
        assert len(executor.calls) == 1
        assert results == ["k:a", "k:b"]

    def test_drain_flushes_pending_batches(self):
        async def scenario():
            executor = _RecordingExecutor()
            batcher = RequestBatcher(executor, window_s=30.0)
            pending = asyncio.ensure_future(batcher.submit("k", "a"))
            await asyncio.sleep(0)  # let submit() register the batch
            await batcher.drain()
            return executor, await asyncio.wait_for(pending, timeout=5.0)

        executor, result = asyncio.run(scenario())
        assert executor.calls == [("k", ["a"])]
        assert result == "k:a"

    def test_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            RequestBatcher(_RecordingExecutor(), window_s=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            RequestBatcher(_RecordingExecutor(), max_batch=0)


class TestFailureFanOut:
    def test_executor_error_rejects_every_waiter(self):
        async def scenario():
            executor = _RecordingExecutor(fail=True)
            batcher = RequestBatcher(executor, window_s=0.0)
            results = await asyncio.gather(
                batcher.submit("k", "a"), batcher.submit("k", "b"),
                return_exceptions=True,
            )
            return executor, results

        executor, results = asyncio.run(scenario())
        assert len(executor.calls) == 1
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_failure_does_not_poison_later_batches(self):
        async def scenario():
            executor = _RecordingExecutor(fail=True)
            batcher = RequestBatcher(executor, window_s=0.0)
            with pytest.raises(RuntimeError):
                await batcher.submit("k", "a")
            executor.fail = False
            return await batcher.submit("k", "b")

        assert asyncio.run(scenario()) == "k:b"
