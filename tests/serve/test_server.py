"""Real-TCP integration: ServerThread, keep-alive, protocol errors,
the load generator, and agreement with the ``repro`` CLI."""

import http.client
import json
import socket

import pytest

from repro.cli import build_parser, main
from repro.serve import RequestPool, ServeConfig, ServerThread, create_app

from tests.serve.helpers import small_solve_body


@pytest.fixture(scope="module")
def server():
    app = create_app(ServeConfig(batch_window_s=0.0))
    with ServerThread(app) as running:
        yield running


def _request(conn, method, path, payload=None):
    body = None if payload is None else json.dumps(payload)
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    return response.status, json.loads(response.read().decode("utf-8"))


class TestTcp:
    def test_healthz_over_real_socket(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            status, body = _request(conn, "GET", "/healthz")
        finally:
            conn.close()
        assert status == 200
        assert body["status"] == "ok"

    def test_keep_alive_reuses_one_connection(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            first = _request(conn, "POST", "/solve", small_solve_body())
            second = _request(conn, "GET", "/stats")
            third = _request(conn, "POST", "/solve", small_solve_body())
        finally:
            conn.close()
        assert first[0] == second[0] == third[0] == 200
        # The repeat request on the same connection hit the warm pool.
        assert third[1]["results"][0]["pool"]["hit"] is True

    def test_garbage_request_gets_a_400(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(b"NOT A REQUEST LINE\r\n\r\n")
            raw = sock.recv(4096)
        assert raw.startswith(b"HTTP/1.1 400")

    def test_chunked_bodies_are_501(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /solve HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"\r\n"
            )
            raw = sock.recv(4096)
        assert raw.startswith(b"HTTP/1.1 501")

    def test_request_pool_load_generator(self, server):
        pool = RequestPool(server.host, server.port, clients=2)
        report = pool.run(
            [("POST", "/solve", small_solve_body())] * 4
            + [("GET", "/healthz", None)] * 2
        )
        assert report.requests == 6
        assert report.errors == 0
        assert all(status == 200 for status, _ in report.responses)
        summary = report.as_dict()
        assert summary["throughput_rps"] > 0
        assert (
            summary["latency_ms"]["p50"]
            <= summary["latency_ms"]["p95"]
            <= summary["latency_ms"]["p99"]
            <= summary["latency_ms"]["max"]
        )


class TestCliAgreement:
    def test_served_solve_matches_cli_to_1e9(self, server, tmp_path, capsys):
        """POST /solve on the deployment the CLI found must report the
        same peak temperature to within 1e-9 K (in fact bit-identical:
        both paths run the same solve on the same assembled system)."""
        out = tmp_path / "alpha.json"
        assert main(["solve", "--benchmark", "alpha", "--json", str(out)]) == 0
        capsys.readouterr()
        cli = json.loads(out.read_text())

        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            status, body = _request(conn, "POST", "/solve", {
                "benchmark": "alpha",
                "tec_tiles": cli["tec_tiles"],
                "current_a": cli["current_a"],
            })
        finally:
            conn.close()
        assert status == 200
        served = body["results"][0]["values"]
        assert abs(served["peak_c"] - cli["peak_c"]) <= 1e-9
        assert abs(served["p_tec_w"] - cli["tec_power_w"]) <= 1e-9

    def test_served_rom_transient_matches_cli_to_certified(
        self, server, tmp_path, capsys
    ):
        """POST /transient with the certified ROM must agree with
        ``repro transient --json`` over real TCP to within the sum of
        the two certified error bounds (each trace is within its own
        bound of the same full-order truth)."""
        out = tmp_path / "transient.json"
        argv = ["transient", "--benchmark", "hc08", "--tiles", "5", "6",
                "--current", "0.5", "--dt", "0.01", "--steps", "20",
                "--rom", "always", "--json", str(out)]
        assert main(argv) == 0
        capsys.readouterr()
        cli = json.loads(out.read_text())
        assert cli["rom"] is not None

        conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            status, body = _request(conn, "POST", "/transient", {
                "benchmark": "hc08",
                "tec_tiles": [5, 6],
                "current_a": 0.5,
                "dt": 0.01,
                "steps": 20,
                "rom": "always",
            })
        finally:
            conn.close()
        assert status == 200
        served = body["values"]
        assert served["rom_active"] is True
        allowance = (
            served["rom_certified_error_k"]
            + cli["rom"]["certified_error_k"]
            + 1e-9
        )
        assert abs(served["final_peak_c"] - cli["peak_trace_c"][-1]) <= allowance
        assert abs(served["max_peak_c"] - cli["max_peak_c"]) <= allowance


class TestServeCli:
    def test_parser_accepts_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--pool-size", "4",
            "--batch-window", "0.01", "--batch-max", "16",
            "--threads", "2", "--workers", "3",
        ])
        assert args.command == "serve"
        assert (args.pool_size, args.batch_max, args.workers) == (4, 16, 3)

    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_nonpositive_workers_rejected(self, capsys, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--workers", value])
        assert excinfo.value.code == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err

    def test_bad_pool_size_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--pool-size", "-1"])
        assert "repro serve: error" in str(excinfo.value)
