"""Wire-schema parsing and blueprint hashing."""

import dataclasses

import pytest

from repro.serve.schemas import (
    SchemaError,
    blueprint_key,
    parse_deploy,
    parse_solve,
    parse_sweep,
    parse_transient,
)
from repro.sweep.spec import Scenario, SweepSpec

from tests.serve.helpers import SMALL_CHIP, small_solve_body


class TestParseSolve:
    def test_single_current(self):
        scenarios = parse_solve(small_solve_body(current_a=0.7))
        assert len(scenarios) == 1
        scenario = scenarios[0]
        assert scenario.task == "solve"
        assert scenario.current_a == 0.7
        assert scenario.tec_tiles == tuple(SMALL_CHIP["tec_tiles"])

    def test_current_list_fans_out(self):
        body = small_solve_body()
        del body["current_a"]
        body["currents_a"] = [0.2, 0.4, 0.6]
        scenarios = parse_solve(body)
        assert [s.current_a for s in scenarios] == [0.2, 0.4, 0.6]
        assert len({s.name for s in scenarios}) == 3

    def test_benchmark_geometry(self):
        scenarios = parse_solve(
            {"benchmark": "alpha", "tec_tiles": [3], "current_a": 1.0}
        )
        assert scenarios[0].benchmark == "alpha"

    @pytest.mark.parametrize("mutation", [
        {"tec_tiles": None},                  # missing deployment
        {"current_a": None},                  # no current at all
        {"currents_a": []},                   # empty list
        {"currents_a": ["x"]},                # non-numeric
        {"bogus": 1},                         # unknown field
        {"rows": None},                       # broken geometry
    ])
    def test_rejects(self, mutation):
        body = small_solve_body()
        for key, value in mutation.items():
            if value is None:
                body.pop(key, None)
            else:
                body[key] = value
        with pytest.raises(SchemaError):
            parse_solve(body)

    def test_rejects_non_object(self):
        with pytest.raises(SchemaError, match="JSON object"):
            parse_solve([1, 2, 3])

    def test_unknown_benchmark_is_a_schema_error(self):
        # Must be a 400 at parse time, not a KeyError 500 in the worker.
        with pytest.raises(SchemaError, match="unknown benchmark"):
            parse_solve({"benchmark": "nope", "tec_tiles": [1], "current_a": 1.0})


class TestParseTransient:
    def test_builds_transient_scenario(self):
        body = small_solve_body(dt=1e-3, steps=10)
        scenario = parse_transient(body)
        assert scenario.task == "transient"
        assert scenario.dt == 1e-3
        assert scenario.steps == 10

    def test_invalid_steps_surface_as_schema_errors(self):
        with pytest.raises(SchemaError, match="steps"):
            parse_transient(small_solve_body(steps=0))

    def test_rom_fields_forwarded(self):
        body = small_solve_body(
            dt=1e-3, steps=10, rom="always", rom_dim=16, rom_tol=1e-4
        )
        scenario = parse_transient(body)
        assert scenario.rom == "always"
        assert scenario.rom_dim == 16
        assert scenario.rom_tol == pytest.approx(1e-4)

    def test_rom_fields_default_to_none(self):
        scenario = parse_transient(small_solve_body(dt=1e-3, steps=10))
        assert scenario.rom is None
        assert scenario.rom_dim is None
        assert scenario.rom_tol is None

    def test_invalid_rom_mode_is_a_schema_error(self):
        with pytest.raises(SchemaError, match="rom"):
            parse_transient(small_solve_body(steps=10, rom="sometimes"))

    def test_rom_fields_change_the_blueprint_key(self):
        plain = parse_transient(small_solve_body(dt=1e-3, steps=10))
        tuned = parse_transient(
            small_solve_body(dt=1e-3, steps=10, rom="always", rom_dim=24)
        )
        assert blueprint_key(plain) != blueprint_key(tuned)

    def test_sweep_scenarios_accept_rom_fields(self):
        body = {
            "name": "rom-sweep",
            "scenarios": [dict(
                small_solve_body(dt=1e-3, steps=5, rom="always"),
                name="t", task="transient",
            )],
        }
        spec = parse_sweep(body)
        assert spec.scenarios[0].rom == "always"


class TestParseDeploy:
    def test_default_is_greedy(self):
        body = {key: SMALL_CHIP[key] for key in ("rows", "cols", "power_map")}
        body["limit_c"] = 89.0
        scenario = parse_deploy(body)
        assert scenario.task == "greedy"
        assert scenario.limit_c == 89.0

    def test_full_cover_selects_table1(self):
        scenario = parse_deploy({"benchmark": "alpha", "full_cover": True})
        assert scenario.task == "table1"

    def test_engine_forwarded(self):
        scenario = parse_deploy({"benchmark": "alpha", "engine": "incremental"})
        assert scenario.engine == "incremental"


class TestParseSweep:
    def test_spec_roundtrip(self):
        spec = SweepSpec(
            scenarios=(
                Scenario(name="a", task="solve", benchmark="alpha",
                         tec_tiles=(1, 2), current_a=0.5),
                Scenario(name="b", task="greedy", benchmark="alpha"),
            ),
            name="wire-trip",
        )
        wire = {
            "name": spec.name,
            "scenarios": [
                {k: v for k, v in dataclasses.asdict(s).items() if v is not None}
                for s in spec
            ],
        }
        parsed = parse_sweep(wire)
        assert parsed.name == spec.name
        assert parsed.scenarios == spec.scenarios

    def test_duplicate_names_rejected(self):
        entry = {"name": "dup", "task": "greedy", "benchmark": "alpha"}
        with pytest.raises(SchemaError, match="duplicate"):
            parse_sweep({"scenarios": [entry, dict(entry)]})

    def test_needs_scenarios(self):
        with pytest.raises(SchemaError, match="scenarios"):
            parse_sweep({"name": "empty"})

    def test_entry_needs_name_and_task(self):
        with pytest.raises(SchemaError, match="name"):
            parse_sweep({"scenarios": [{"task": "greedy", "benchmark": "alpha"}]})


class TestBlueprintKey:
    def _scenario(self, **overrides):
        fields = dict(
            name="x", task="solve", benchmark="alpha",
            tec_tiles=(1, 2), current_a=0.5,
        )
        fields.update(overrides)
        return Scenario(**fields)

    def test_current_and_tiles_do_not_change_the_key(self):
        a = self._scenario()
        b = self._scenario(name="y", current_a=2.5, tec_tiles=(7, 8, 9))
        assert blueprint_key(a) == blueprint_key(b)

    @pytest.mark.parametrize("overrides", [
        {"power_scale": 1.1},
        {"seebeck_factor": 0.5},
        {"backend": "krylov"},
        {"limit_c": 80.0},
        {"benchmark": "hc01"},
    ])
    def test_matrix_relevant_fields_change_the_key(self, overrides):
        assert blueprint_key(self._scenario()) != blueprint_key(
            self._scenario(**overrides)
        )
