"""Warm-session pool: LRU behaviour and eviction-safe stats."""

import asyncio

import pytest

from repro.serve.pool import SessionPool
from repro.thermal.session import SolverStats


class _FakeProblem:
    """Just enough problem surface for the pool: stats + model walk."""

    def __init__(self, name, solves=0):
        self.name = name
        self.solver_stats = SolverStats(solves=solves)

    def cached_models(self):
        return []


def _fill(pool, names):
    entries = {}
    for name in names:
        entry, hit = pool.acquire(name, lambda name=name: _FakeProblem(name))
        assert not hit
        entries[name] = entry
    return entries


class TestLru:
    def test_hit_returns_same_entry_and_counts(self):
        pool = SessionPool(max_entries=4)
        first, hit = pool.acquire("k", lambda: _FakeProblem("k"))
        assert not hit
        second, hit = pool.acquire("k", lambda: _FakeProblem("other"))
        assert hit
        assert second is first
        assert second.hits == 1
        assert (pool.hits, pool.misses) == (1, 1)

    def test_capacity_evicts_least_recently_used(self):
        pool = SessionPool(max_entries=2)
        _fill(pool, ["a", "b"])
        pool.acquire("a", lambda: _FakeProblem("!"))      # refresh a
        pool.acquire("c", lambda: _FakeProblem("c"))      # evicts b
        assert pool.evictions == 1
        keys = [entry["key"] for entry in pool.stats()["entries"]]
        assert keys == ["a", "c"]

    def test_zero_capacity_disables_caching(self):
        pool = SessionPool(max_entries=0)
        first, hit_a = pool.acquire("k", lambda: _FakeProblem("k"))
        second, hit_b = pool.acquire("k", lambda: _FakeProblem("k"))
        assert not hit_a and not hit_b
        assert first is not second
        assert len(pool) == 0
        assert pool.misses == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            SessionPool(max_entries=-1)

    def test_locked_entries_survive_eviction(self):
        async def scenario():
            pool = SessionPool(max_entries=1)
            busy, _ = pool.acquire("busy", lambda: _FakeProblem("busy"))
            async with busy.lock:
                pool.acquire("other", lambda: _FakeProblem("other"))
                # "busy" is LRU but in use, and "other" was just handed
                # out: the pool overflows instead of retiring a session
                # mid-solve.
                assert len(pool) == 2
                assert pool.evictions == 0
            # Lock released: the next acquire drains the overflow.
            pool.acquire("third", lambda: _FakeProblem("third"))
            return pool

        pool = asyncio.run(scenario())
        assert pool.evictions >= 1
        assert len(pool) <= 2


class TestEvictionStats:
    def test_eviction_merges_retired_counters(self):
        pool = SessionPool(max_entries=1)
        entry, _ = pool.acquire("a", lambda: _FakeProblem("a", solves=7))
        pool.acquire("b", lambda: _FakeProblem("b", solves=5))
        stats = pool.stats()
        assert stats["evictions"] == 1
        assert stats["retired_entries"] == 1
        assert stats["retired_solver_stats"]["solves"] == 7
        # Lifetime totals fold live + retired: nothing is forgotten.
        assert stats["lifetime_solver_stats"]["solves"] == 12

    def test_lifetime_totals_are_monotone_across_churn(self):
        pool = SessionPool(max_entries=2)
        totals = []
        for round_index in range(6):
            key = "chip-{}".format(round_index % 3)
            pool.acquire(key, lambda: _FakeProblem(key, solves=3))
            totals.append(pool.stats()["lifetime_solver_stats"]["solves"])
        assert totals == sorted(totals)

    def test_clear_retires_everything(self):
        pool = SessionPool(max_entries=4)
        _fill(pool, ["a", "b", "c"])
        pool.clear()
        stats = pool.stats()
        assert len(pool) == 0
        assert stats["retired_entries"] == 3
