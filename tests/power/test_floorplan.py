"""Functional units and floorplans."""

import numpy as np
import pytest

from repro.power.floorplan import Floorplan, FunctionalUnit
from repro.thermal.geometry import TileGrid


@pytest.fixture()
def grid():
    return TileGrid(3, 3)


class TestFunctionalUnit:
    def test_basic(self):
        unit = FunctionalUnit("u", [3, 1, 2], 1.5)
        assert unit.tiles == (1, 2, 3)
        assert unit.num_tiles == 3
        assert unit.power_per_tile_w() == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no tiles"):
            FunctionalUnit("u", [], 1.0)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FunctionalUnit("u", [1, 1], 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            FunctionalUnit("u", [0], -1.0)

    def test_from_rect(self, grid):
        unit = FunctionalUnit.from_rect("r", grid, 1, 1, 2, 2, 2.0)
        assert unit.tiles == (4, 5, 7, 8)

    def test_from_rect_degenerate_rejected(self, grid):
        with pytest.raises(ValueError):
            FunctionalUnit.from_rect("r", grid, 0, 0, 0, 2, 1.0)


class TestFloorplan:
    def _cover(self, grid):
        return [
            FunctionalUnit("a", range(0, 3), 1.0),
            FunctionalUnit("b", range(3, 6), 2.0),
            FunctionalUnit("c", range(6, 9), 3.0),
        ]

    def test_cover_required_by_default(self, grid):
        with pytest.raises(ValueError, match="tile the grid"):
            Floorplan(grid, [FunctionalUnit("a", [0], 1.0)])

    def test_partial_cover_allowed_when_disabled(self, grid):
        plan = Floorplan(
            grid, [FunctionalUnit("a", [0], 1.0)], require_cover=False
        )
        assert plan.total_power_w == pytest.approx(1.0)

    def test_overlap_rejected(self, grid):
        units = [
            FunctionalUnit("a", [0, 1], 1.0),
            FunctionalUnit("b", [1, 2], 1.0),
        ]
        with pytest.raises(ValueError, match="claimed by both"):
            Floorplan(grid, units, require_cover=False)

    def test_out_of_grid_rejected(self, grid):
        with pytest.raises(IndexError):
            Floorplan(grid, [FunctionalUnit("a", [99], 1.0)], require_cover=False)

    def test_duplicate_names_rejected(self, grid):
        units = [
            FunctionalUnit("a", [0], 1.0),
            FunctionalUnit("a", [1], 1.0),
        ]
        with pytest.raises(ValueError, match="unique"):
            Floorplan(grid, units, require_cover=False)

    def test_power_map_rasterization(self, grid):
        plan = Floorplan(grid, self._cover(grid))
        power = plan.power_map()
        assert power[0] == pytest.approx(1.0 / 3.0)
        assert power[8] == pytest.approx(1.0)
        assert float(np.sum(power)) == pytest.approx(6.0)

    def test_unit_map(self, grid):
        plan = Floorplan(grid, self._cover(grid))
        owner = plan.unit_map()
        assert owner[0] == 0 and owner[4] == 1 and owner[8] == 2

    def test_unit_lookup(self, grid):
        plan = Floorplan(grid, self._cover(grid))
        assert plan.unit("b").power_w == pytest.approx(2.0)
        with pytest.raises(KeyError):
            plan.unit("zzz")

    def test_fractions(self, grid):
        plan = Floorplan(grid, self._cover(grid))
        assert plan.area_fraction(["a"]) == pytest.approx(1.0 / 3.0)
        assert plan.power_fraction(["c"]) == pytest.approx(0.5)

    def test_density(self, grid):
        plan = Floorplan(grid, self._cover(grid))
        # unit c: 3 W over 3 tiles of 0.25 mm^2 => 4 W/mm^2 = 400 W/cm^2
        assert plan.unit_density_w_cm2("c") == pytest.approx(400.0)

    def test_scaled_to_total(self, grid):
        plan = Floorplan(grid, self._cover(grid)).scaled_to_total(12.0)
        assert plan.total_power_w == pytest.approx(12.0)
        assert plan.unit("a").power_w == pytest.approx(2.0)
