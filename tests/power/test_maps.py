"""Power-density maps, summaries and ASCII rendering."""

import numpy as np
import pytest

from repro.power.alpha import alpha_floorplan
from repro.power.maps import (
    power_density_map_w_cm2,
    power_summary,
    render_ascii_heatmap,
)
from repro.thermal.geometry import TileGrid


class TestDensityMap:
    def test_shape_and_values(self):
        grid = TileGrid(2, 2)
        power = np.array([0.25, 0.0, 0.0, 0.5])
        density = power_density_map_w_cm2(grid, power)
        assert density.shape == (2, 2)
        # 0.25 W over 0.25 mm^2 = 100 W/cm^2
        assert density[0, 0] == pytest.approx(100.0)
        assert density[1, 1] == pytest.approx(200.0)


class TestSummary:
    def test_alpha_summary(self):
        summary = power_summary(alpha_floorplan())
        assert summary["total_power_w"] == pytest.approx(20.6)
        assert summary["peak_density_w_cm2"] == pytest.approx(282.4, abs=0.5)
        assert summary["units"]["L2"]["density_w_cm2"] == pytest.approx(25.0, abs=0.1)
        assert summary["units"]["IntReg"]["tiles"] == 4


class TestAsciiHeatmap:
    def test_shape(self):
        art = render_ascii_heatmap(np.zeros((3, 5)))
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 5 for line in lines)

    def test_extremes_use_extreme_chars(self):
        art = render_ascii_heatmap(np.array([[0.0, 1.0]]), chars=" #")
        assert art == " #"

    def test_constant_field(self):
        art = render_ascii_heatmap(np.full((2, 2), 7.0), chars=" #")
        assert art == "  \n  "

    def test_explicit_range(self):
        art = render_ascii_heatmap(
            np.array([[5.0]]), chars="abc", vmin=0.0, vmax=10.0
        )
        assert art == "b"

    def test_clipping_outside_range(self):
        art = render_ascii_heatmap(
            np.array([[99.0, -99.0]]), chars="ab", vmin=0.0, vmax=1.0
        )
        assert art == "ba"

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_ascii_heatmap(np.zeros(4))
