"""The Section VI.B hypothetical chip generator."""

import numpy as np
import pytest

from repro.power.hypothetical import HypotheticalChipConfig, hypothetical_chip


class TestConfig:
    def test_defaults_follow_paper(self):
        cfg = HypotheticalChipConfig()
        assert (cfg.rows, cfg.cols) == (12, 12)
        assert (cfg.min_unit_tiles, cfg.max_unit_tiles) == (5, 15)
        assert cfg.hot_unit_count == 2
        assert cfg.hot_power_fraction == pytest.approx(0.30)

    def test_validation(self):
        with pytest.raises(ValueError):
            HypotheticalChipConfig(min_unit_tiles=10, max_unit_tiles=5)
        with pytest.raises(ValueError):
            HypotheticalChipConfig(hot_power_fraction=1.5)
        with pytest.raises(ValueError):
            HypotheticalChipConfig(total_power_w=0.0)


class TestGenerator:
    @pytest.fixture(scope="class")
    def chip(self):
        return hypothetical_chip(HypotheticalChipConfig(total_power_w=20.0), seed=42)

    def test_covers_grid(self, chip):
        assert int(np.sum(chip.unit_map() >= 0)) == 144

    def test_total_power_exact(self, chip):
        assert chip.total_power_w == pytest.approx(20.0)

    def test_two_hot_units(self, chip):
        hot = [u.name for u in chip.units if u.name.startswith("HOT")]
        assert sorted(hot) == ["HOT0", "HOT1"]

    def test_hot_power_fraction(self, chip):
        hot = [u.name for u in chip.units if u.name.startswith("HOT")]
        assert chip.power_fraction(hot) == pytest.approx(0.30)

    def test_hot_area_near_ten_percent(self, chip):
        hot = [u.name for u in chip.units if u.name.startswith("HOT")]
        assert 0.05 <= chip.area_fraction(hot) <= 0.18

    def test_unit_sizes_in_range_mostly(self, chip):
        # merging of trapped pockets can exceed max; all units >= min.
        sizes = [u.num_tiles for u in chip.units]
        assert min(sizes) >= 5

    def test_units_connected(self, chip):
        """Flood-fill growth must produce 4-connected units."""
        import networkx as nx

        grid = chip.grid
        for unit in chip.units:
            graph = nx.Graph()
            tiles = set(unit.tiles)
            graph.add_nodes_from(tiles)
            for tile in tiles:
                row, col = grid.row_col(tile)
                for r, c in grid.neighbors(row, col):
                    other = grid.flat_index(r, c)
                    if other in tiles:
                        graph.add_edge(tile, other)
            assert nx.is_connected(graph), unit.name

    def test_deterministic_by_seed(self):
        a = hypothetical_chip(seed=7)
        b = hypothetical_chip(seed=7)
        assert [u.tiles for u in a.units] == [u.tiles for u in b.units]
        assert [u.power_w for u in a.units] == pytest.approx(
            [u.power_w for u in b.units]
        )

    def test_different_seeds_differ(self):
        a = hypothetical_chip(seed=1)
        b = hypothetical_chip(seed=2)
        assert [u.tiles for u in a.units] != [u.tiles for u in b.units]

    def test_hot_density_exceeds_cool_density(self, chip):
        hot_density = max(
            chip.unit_density_w_cm2(u.name)
            for u in chip.units
            if u.name.startswith("HOT")
        )
        cool_density = max(
            chip.unit_density_w_cm2(u.name)
            for u in chip.units
            if not u.name.startswith("HOT")
        )
        assert hot_density > cool_density

    def test_custom_prefix(self):
        chip = hypothetical_chip(seed=3, name_prefix="B")
        assert any(u.name.startswith("B0") for u in chip.units)

    def test_small_grid_generator(self):
        cfg = HypotheticalChipConfig(rows=6, cols=6, min_unit_tiles=3,
                                     max_unit_tiles=6, total_power_w=5.0)
        chip = hypothetical_chip(cfg, seed=11)
        assert int(np.sum(chip.unit_map() >= 0)) == 36
