"""The Alpha-21364-like benchmark: the paper's published statistics."""

import numpy as np
import pytest

from repro.power.alpha import (
    HIGH_POWER_UNITS,
    TOTAL_POWER_W,
    alpha_floorplan,
    alpha_grid,
    alpha_power_map,
)


@pytest.fixture(scope="module")
def plan():
    return alpha_floorplan()


class TestGeometry:
    def test_grid_is_12x12_half_mm(self):
        grid = alpha_grid()
        assert (grid.rows, grid.cols) == (12, 12)
        assert grid.tile_width == pytest.approx(0.5e-3)
        assert grid.width == pytest.approx(6e-3)  # 6 mm die

    def test_floorplan_tiles_grid_exactly(self, plan):
        assert int(np.sum(plan.unit_map() >= 0)) == 144

    def test_units_present(self, plan):
        names = {unit.name for unit in plan.units}
        assert set(HIGH_POWER_UNITS) <= names
        assert {"L2", "Icache", "Dcache"} <= names


class TestPublishedStatistics:
    def test_total_power_20_6(self, plan):
        assert plan.total_power_w == pytest.approx(TOTAL_POWER_W, abs=1e-9)

    def test_intreg_density_282_4(self, plan):
        assert plan.unit_density_w_cm2("IntReg") == pytest.approx(282.4, abs=0.5)

    def test_l2_density_25(self, plan):
        assert plan.unit_density_w_cm2("L2") == pytest.approx(25.0, abs=0.1)

    def test_hot_units_28_percent_power(self, plan):
        assert plan.power_fraction(HIGH_POWER_UNITS) == pytest.approx(0.281, abs=0.003)

    def test_hot_units_about_tenth_of_area(self, plan):
        fraction = plan.area_fraction(HIGH_POWER_UNITS)
        assert 0.09 <= fraction <= 0.13

    def test_intreg_is_peak_density(self, plan):
        densities = {
            unit.name: plan.unit_density_w_cm2(unit.name) for unit in plan.units
        }
        assert max(densities, key=densities.get) == "IntReg"

    def test_l2_is_lowest_density(self, plan):
        densities = {
            unit.name: plan.unit_density_w_cm2(unit.name) for unit in plan.units
        }
        assert min(densities, key=densities.get) == "L2"


class TestPowerMap:
    def test_deterministic(self):
        assert np.array_equal(alpha_power_map(), alpha_power_map())

    def test_sum_matches_total(self):
        assert float(np.sum(alpha_power_map())) == pytest.approx(TOTAL_POWER_W)

    def test_all_tiles_powered(self):
        assert np.all(alpha_power_map() > 0.0)

    def test_intreg_tile_value(self, plan):
        power = alpha_power_map()
        tile = plan.unit("IntReg").tiles[0]
        assert power[tile] == pytest.approx(plan.unit("IntReg").power_per_tile_w())
