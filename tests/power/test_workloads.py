"""Synthetic workload traces and the worst-case reduction."""

import numpy as np
import pytest

from repro.power.alpha import alpha_floorplan
from repro.power.workloads import (
    SyntheticWorkload,
    spec2000_like_suite,
    worst_case_power,
)


@pytest.fixture(scope="module")
def plan():
    return alpha_floorplan()


@pytest.fixture(scope="module")
def unit_names(plan):
    return [unit.name for unit in plan.units]


class TestWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticWorkload("w", baseline=1.5)
        with pytest.raises(ValueError):
            SyntheticWorkload("w", biases={"x": -0.1})

    def test_mean_utilization_fallback(self):
        workload = SyntheticWorkload("w", baseline=0.4, biases={"IntReg": 0.9})
        assert workload.mean_utilization("IntReg") == 0.9
        assert workload.mean_utilization("L2") == 0.4

    def test_trace_bounds(self, unit_names):
        trace = SyntheticWorkload("w").trace(unit_names, 50, seed=1)
        assert trace.utilization.shape == (50, len(unit_names))
        assert np.all(trace.utilization >= 0.0)
        assert np.all(trace.utilization <= 1.0)

    def test_trace_deterministic(self, unit_names):
        a = SyntheticWorkload("w").trace(unit_names, 20, seed=5)
        b = SyntheticWorkload("w").trace(unit_names, 20, seed=5)
        assert np.array_equal(a.utilization, b.utilization)

    def test_trace_steps_validation(self, unit_names):
        with pytest.raises(ValueError):
            SyntheticWorkload("w").trace(unit_names, 0)

    def test_biased_unit_runs_hotter(self, unit_names):
        workload = SyntheticWorkload(
            "int", baseline=0.1, biases={"IntReg": 0.9}, burstiness=0.02
        )
        trace = workload.trace(unit_names, 200, seed=2)
        col = unit_names.index("IntReg")
        other = unit_names.index("L2")
        assert trace.utilization[:, col].mean() > trace.utilization[:, other].mean()


class TestPowerSeries:
    def test_static_floor(self, plan, unit_names):
        trace = SyntheticWorkload("w").trace(unit_names, 10, seed=3)
        nominal = {name: 1.0 for name in unit_names}
        series = trace.unit_power_series(nominal, static_fraction=0.3)
        assert np.all(series >= 0.3 - 1e-12)
        assert np.all(series <= 1.0 + 1e-12)

    def test_power_map_at_step(self, plan, unit_names):
        trace = SyntheticWorkload("w").trace(unit_names, 10, seed=3)
        nominal = {u.name: u.power_w for u in plan.units}
        power = trace.power_map_at(plan, nominal, 4)
        assert power.shape == (144,)
        assert np.all(power > 0.0)
        # every snapshot is below the worst case (utilization <= 1)
        assert np.all(power <= plan.power_map() + 1e-12)

    def test_power_map_step_bounds(self, plan, unit_names):
        trace = SyntheticWorkload("w").trace(unit_names, 10, seed=3)
        nominal = {u.name: u.power_w for u in plan.units}
        with pytest.raises(IndexError):
            trace.power_map_at(plan, nominal, 10)


class TestWorstCase:
    def test_margin_applied(self, unit_names):
        trace = SyntheticWorkload("w").trace(unit_names, 30, seed=4)
        nominal = {name: 2.0 for name in unit_names}
        worst = worst_case_power(nominal, [trace], margin=0.2)
        series = trace.unit_power_series(nominal)
        for j, name in enumerate(unit_names):
            assert worst[name] == pytest.approx(1.2 * series[:, j].max())

    def test_max_over_traces(self, unit_names):
        low = SyntheticWorkload("low", baseline=0.05, burstiness=0.01)
        high = SyntheticWorkload("high", baseline=0.95, burstiness=0.01)
        nominal = {name: 1.0 for name in unit_names}
        traces = [
            low.trace(unit_names, 20, seed=6),
            high.trace(unit_names, 20, seed=6),
        ]
        worst = worst_case_power(nominal, traces, margin=0.0)
        only_low = worst_case_power(nominal, traces[:1], margin=0.0)
        for name in unit_names:
            assert worst[name] >= only_low[name]

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            worst_case_power({"a": 1.0}, [])

    def test_worst_case_bounded_by_margin_times_nominal(self, unit_names):
        trace = SyntheticWorkload("w").trace(unit_names, 30, seed=4)
        nominal = {name: 3.0 for name in unit_names}
        worst = worst_case_power(nominal, [trace], margin=0.2)
        for name in unit_names:
            assert worst[name] <= 1.2 * 3.0 + 1e-12


class TestSuite:
    def test_suite_composition(self):
        names = [w.name for w in spec2000_like_suite()]
        assert "int-heavy" in names and "fp-heavy" in names
        assert len(names) >= 4

    def test_suite_traces_work_on_alpha(self, plan, unit_names):
        for workload in spec2000_like_suite():
            trace = workload.trace(unit_names, 5, seed=0)
            assert trace.steps == 5
