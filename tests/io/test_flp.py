"""HotSpot .flp round trips and rasterization."""

import numpy as np
import pytest

from repro.io.flp import (
    FlpRect,
    _unit_rectangles,
    floorplan_from_flp,
    read_flp,
    write_flp,
)
from repro.power.alpha import alpha_floorplan
from repro.power.floorplan import Floorplan, FunctionalUnit
from repro.power.hypothetical import hypothetical_chip
from repro.thermal.geometry import TileGrid


class TestRectangleDecomposition:
    def test_rectangular_unit_single_piece(self):
        grid = TileGrid(4, 4)
        unit = FunctionalUnit.from_rect("r", grid, 1, 1, 2, 3, 1.0)
        pieces = _unit_rectangles(grid, unit)
        assert pieces == [(1, 1, 2, 3)]

    def test_l_shape_two_pieces(self):
        grid = TileGrid(3, 3)
        # L shape: top row + left column
        unit = FunctionalUnit("L", [0, 1, 2, 3, 6], 1.0)
        pieces = _unit_rectangles(grid, unit)
        covered = set()
        for row0, col0, rows, cols in pieces:
            for r in range(row0, row0 + rows):
                for c in range(col0, col0 + cols):
                    flat = grid.flat_index(r, c)
                    assert flat not in covered
                    covered.add(flat)
        assert covered == set(unit.tiles)
        assert len(pieces) == 2

    def test_decomposition_always_exact(self):
        chip = hypothetical_chip(seed=5)
        for unit in chip.units:
            covered = set()
            for row0, col0, rows, cols in _unit_rectangles(chip.grid, unit):
                for r in range(row0, row0 + rows):
                    for c in range(col0, col0 + cols):
                        covered.add(chip.grid.flat_index(r, c))
            assert covered == set(unit.tiles), unit.name


class TestWriteRead:
    def test_alpha_flp_round_trip(self, tmp_path):
        plan = alpha_floorplan()
        path = tmp_path / "alpha.flp"
        written = write_flp(plan, path)
        rects = read_flp(path)
        assert len(rects) == len(written)
        for a, b in zip(written, rects):
            assert a.name == b.name
            assert a.width == pytest.approx(b.width)
            assert a.left == pytest.approx(b.left)

    def test_rect_count_alpha_is_unit_count(self, tmp_path):
        # every Alpha unit is a rectangle
        plan = alpha_floorplan()
        written = write_flp(plan, tmp_path / "a.flp")
        assert len(written) == len(plan.units)

    def test_total_area_preserved(self, tmp_path):
        chip = hypothetical_chip(seed=9)
        written = write_flp(chip, tmp_path / "hc.flp")
        area = sum(rect.width * rect.height for rect in written)
        assert area == pytest.approx(chip.grid.area)

    def test_read_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.flp"
        path.write_text("unit 1.0 2.0\n")
        with pytest.raises(ValueError, match="5 fields"):
            read_flp(path)

    def test_read_rejects_nonnumeric(self, tmp_path):
        path = tmp_path / "bad.flp"
        path.write_text("unit a b c d\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_flp(path)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.flp"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError, match="no rectangles"):
            read_flp(path)

    def test_read_rejects_degenerate_rect(self, tmp_path):
        path = tmp_path / "deg.flp"
        path.write_text("unit 0.0 1.0 0.0 0.0\n")
        with pytest.raises(ValueError, match="non-positive"):
            read_flp(path)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.flp"
        path.write_text("# header\n\nunit 1e-3 1e-3 0 0  # trailing\n")
        rects = read_flp(path)
        assert len(rects) == 1 and rects[0].name == "unit"


class TestRasterization:
    def test_alpha_full_round_trip(self, tmp_path):
        """flp write -> rasterize recovers the identical power map."""
        plan = alpha_floorplan()
        path = tmp_path / "alpha.flp"
        write_flp(plan, path)
        powers = {unit.name: unit.power_w for unit in plan.units}
        recovered = floorplan_from_flp(path, plan.grid, powers)
        assert np.allclose(recovered.power_map(), plan.power_map())

    def test_hypothetical_round_trip_merges_parts(self, tmp_path):
        chip = hypothetical_chip(seed=3)
        path = tmp_path / "hc.flp"
        write_flp(chip, path)
        powers = {unit.name: unit.power_w for unit in chip.units}
        recovered = floorplan_from_flp(path, chip.grid, powers)
        assert len(recovered.units) == len(chip.units)
        assert np.allclose(recovered.power_map(), chip.power_map())

    def test_missing_power_raises(self, tmp_path):
        plan = alpha_floorplan()
        path = tmp_path / "alpha.flp"
        write_flp(plan, path)
        with pytest.raises(KeyError, match="no power given"):
            floorplan_from_flp(path, plan.grid, {"L2": 1.0})

    def test_suffix_merging_only_for_numeric(self, tmp_path):
        grid = TileGrid(2, 2)
        path = tmp_path / "x.flp"
        path.write_text(
            "a.core 5e-4 1e-3 0 0\n"
            "b 5e-4 1e-3 5e-4 0\n"
        )
        plan = floorplan_from_flp(
            path, grid, {"a.core": 1.0, "b": 2.0}, require_cover=True
        )
        assert {unit.name for unit in plan.units} == {"a.core", "b"}
