"""Result serialization round trips."""

import json

import pytest

from repro.core.report import BenchmarkRow
from repro.io.results import deployment_to_dict, rows_from_json, rows_to_json


def _row(name="alpha"):
    return BenchmarkRow(
        name=name,
        theta_peak_c=91.8,
        theta_limit_c=85.0,
        num_tecs=13,
        i_opt_a=5.86,
        p_tec_w=1.11,
        fullcover_min_peak_c=87.9,
        swing_loss_c=3.8,
        feasible=True,
        greedy_peak_c=84.1,
        runtime_s=0.3,
    )


class TestRowsJson:
    def test_round_trip_string(self):
        text = rows_to_json([_row(), _row("hc01")])
        rows = rows_from_json(text)
        assert [row.name for row in rows] == ["alpha", "hc01"]
        assert rows[0].i_opt_a == pytest.approx(5.86)

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "rows.json"
        rows_to_json([_row()], path)
        rows = rows_from_json(str(path))
        assert rows[0].num_tecs == 13

    def test_metadata_embedded(self):
        text = rows_to_json([_row()], metadata={"calibration": "v1"})
        document = json.loads(text)
        assert document["metadata"]["calibration"] == "v1"

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="kind"):
            rows_from_json('{"kind": "other", "schema": 1, "rows": []}')

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            rows_from_json('{"kind": "table1-rows", "schema": 99, "rows": []}')


class TestDeploymentDict:
    def test_flattens_real_result(self, alpha_greedy):
        data = deployment_to_dict(alpha_greedy)
        assert data["problem"] == "alpha"
        assert data["feasible"] is True
        assert data["num_tecs"] == len(data["tec_tiles"])
        assert data["iterations"]
        json.dumps(data)  # must be JSON-representable
