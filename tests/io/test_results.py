"""Result serialization round trips."""

import json

import pytest

from repro.core.report import BenchmarkRow
from repro.io.results import (
    bench_report_from_json,
    bench_report_to_json,
    deployment_to_dict,
    rows_from_json,
    rows_to_json,
    sweep_report_from_json,
    sweep_report_to_json,
)
from repro.sweep.report import ScenarioError, ScenarioResult, SweepReport


def _row(name="alpha"):
    return BenchmarkRow(
        name=name,
        theta_peak_c=91.8,
        theta_limit_c=85.0,
        num_tecs=13,
        i_opt_a=5.86,
        p_tec_w=1.11,
        fullcover_min_peak_c=87.9,
        swing_loss_c=3.8,
        feasible=True,
        greedy_peak_c=84.1,
        runtime_s=0.3,
    )


class TestRowsJson:
    def test_round_trip_string(self):
        text = rows_to_json([_row(), _row("hc01")])
        rows = rows_from_json(text)
        assert [row.name for row in rows] == ["alpha", "hc01"]
        assert rows[0].i_opt_a == pytest.approx(5.86)

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "rows.json"
        rows_to_json([_row()], path)
        rows = rows_from_json(str(path))
        assert rows[0].num_tecs == 13

    def test_metadata_embedded(self):
        text = rows_to_json([_row()], metadata={"calibration": "v1"})
        document = json.loads(text)
        assert document["metadata"]["calibration"] == "v1"

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="kind"):
            rows_from_json('{"kind": "other", "schema": 1, "rows": []}')

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            rows_from_json('{"kind": "table1-rows", "schema": 99, "rows": []}')


def _sweep_report():
    return SweepReport(
        spec_name="demo",
        backend="process",
        workers=2,
        results=(
            ScenarioResult(
                index=0, name="a", task="greedy",
                values={"peak_c": 84.1, "tec_tiles": [3, 4]},
                elapsed_s=0.25,
                solver_stats={"solves": 7, "factorizations": 1},
            ),
        ),
        errors=(
            ScenarioError(
                index=1, name="b", task="greedy",
                error_type="IndexError", message="tile 99",
                traceback="Traceback ...",
            ),
        ),
        wall_time_s=0.5,
        scenario_time_s=0.25,
        metadata={"note": "unit"},
    )


class TestSweepReportJson:
    def test_round_trip_string_is_lossless(self):
        original = _sweep_report()
        restored = sweep_report_from_json(sweep_report_to_json(original))
        assert restored == original

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "report.json"
        sweep_report_to_json(_sweep_report(), path)
        restored = sweep_report_from_json(str(path))
        assert restored.spec_name == "demo"
        assert restored.errors[0].error_type == "IndexError"
        assert restored.results[0].solver_stats["solves"] == 7

    def test_metrics_survive_round_trip(self):
        restored = sweep_report_from_json(sweep_report_to_json(_sweep_report()))
        assert restored.num_scenarios == 2
        assert not restored.ok
        assert restored.aggregate_solver_stats().solves == 7

    def test_metadata_embedded(self):
        text = sweep_report_to_json(_sweep_report(), metadata={"rev": "abc"})
        assert json.loads(text)["metadata"]["rev"] == "abc"

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="kind"):
            sweep_report_from_json(rows_to_json([_row()]))

    def test_round_trip_of_real_sweep(self, tmp_path):
        """A report produced by the engine itself survives the trip."""
        from repro.sweep import Scenario, run_sweep

        report = run_sweep(
            [
                Scenario(
                    name="solve", task="solve", rows=2, cols=2,
                    power_map=(0.3, 0.1, 0.1, 0.1),
                    tec_tiles=(0,), current_a=0.2,
                )
            ]
        )
        restored = sweep_report_from_json(sweep_report_to_json(report))
        assert restored.results[0].values == report.results[0].values
        assert restored.wall_time_s == report.wall_time_s


class TestBenchReport:
    _ENTRIES = [
        {"grid": "8x8", "backend": "krylov", "wall_s": 0.01},
        {"grid": "8x8", "backend": "reuse", "wall_s": 0.02},
    ]

    def test_round_trip_via_string(self):
        text = bench_report_to_json(
            "backends", self._ENTRIES, metadata={"cpu_count": 1}
        )
        name, entries, metadata = bench_report_from_json(text)
        assert name == "backends"
        assert entries == self._ENTRIES
        assert metadata == {"cpu_count": 1}

    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        bench_report_to_json("x", self._ENTRIES, str(path))
        name, entries, metadata = bench_report_from_json(str(path))
        assert name == "x"
        assert entries == self._ENTRIES
        assert metadata == {}

    def test_document_shape(self):
        document = json.loads(bench_report_to_json("x", []))
        assert document["kind"] == "bench-report"
        assert document["schema"] == 1
        assert document["entries"] == []

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="kind"):
            bench_report_from_json(rows_to_json([_row()]))


class TestDeploymentDict:
    def test_flattens_real_result(self, alpha_greedy):
        data = deployment_to_dict(alpha_greedy)
        assert data["problem"] == "alpha"
        assert data["feasible"] is True
        assert data["num_tecs"] == len(data["tec_tiles"])
        assert data["iterations"]
        json.dumps(data)  # must be JSON-representable
