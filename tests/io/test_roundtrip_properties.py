"""Property-based round trips for the HotSpot interchange formats."""

import os
import tempfile

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io.flp import floorplan_from_flp, write_flp
from repro.io.ptrace import read_ptrace, write_ptrace
from repro.power.hypothetical import HypotheticalChipConfig, hypothetical_chip

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _temp_file(suffix):
    handle, path = tempfile.mkstemp(suffix=suffix)
    os.close(handle)
    return path


class TestFlpRoundTrip:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=15.0, max_value=25.0),
    )
    @_settings
    def test_random_chip_round_trips_exactly(self, seed, power):
        """Any generated chip — blob units included — survives
        write -> rasterize with an identical power map."""
        chip = hypothetical_chip(
            HypotheticalChipConfig(total_power_w=power), seed=seed
        )
        path = _temp_file(".flp")
        try:
            write_flp(chip, path)
            powers = {unit.name: unit.power_w for unit in chip.units}
            recovered = floorplan_from_flp(path, chip.grid, powers)
        finally:
            os.unlink(path)
        assert len(recovered.units) == len(chip.units)
        assert np.allclose(recovered.power_map(), chip.power_map(), atol=1e-12)

    @given(st.integers(min_value=0, max_value=10**6))
    @_settings
    def test_rectangles_cover_grid_exactly(self, seed):
        chip = hypothetical_chip(seed=seed)
        path = _temp_file(".flp")
        try:
            rects = write_flp(chip, path)
        finally:
            os.unlink(path)
        area = sum(rect.width * rect.height for rect in rects)
        assert abs(area - chip.grid.area) < 1e-12


class TestPtraceRoundTrip:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10**6),
    )
    @_settings
    def test_random_traces_round_trip(self, steps, units, seed):
        rng = np.random.default_rng(seed)
        names = ["u{}".format(k) for k in range(units)]
        powers = rng.uniform(0.0, 5.0, size=(steps, units))
        path = _temp_file(".ptrace")
        try:
            write_ptrace(path, names, powers)
            loaded_names, loaded = read_ptrace(path)
        finally:
            os.unlink(path)
        assert loaded_names == names
        assert np.allclose(loaded, powers, atol=1e-6)
