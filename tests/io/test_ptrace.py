"""HotSpot .ptrace round trips."""

import numpy as np
import pytest

from repro.io.ptrace import read_ptrace, trace_to_ptrace, write_ptrace
from repro.power.alpha import alpha_floorplan
from repro.power.workloads import SyntheticWorkload


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.ptrace"
        powers = np.array([[1.0, 2.0], [3.0, 4.5]])
        write_ptrace(path, ["a", "b"], powers)
        names, loaded = read_ptrace(path)
        assert names == ["a", "b"]
        assert np.allclose(loaded, powers)

    def test_header_comment(self, tmp_path):
        path = tmp_path / "t.ptrace"
        write_ptrace(path, ["a"], [[1.0]], header_comment="hello")
        assert path.read_text().startswith("# hello")
        names, loaded = read_ptrace(path)
        assert names == ["a"]

    def test_shape_validation(self, tmp_path):
        with pytest.raises(ValueError, match="shape"):
            write_ptrace(tmp_path / "x", ["a", "b"], [[1.0]])

    def test_negative_power_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            write_ptrace(tmp_path / "x", ["a"], [[-1.0]])

    def test_read_rejects_ragged(self, tmp_path):
        path = tmp_path / "bad.ptrace"
        path.write_text("a b\n1.0 2.0\n3.0\n")
        with pytest.raises(ValueError, match="expected 2 values"):
            read_ptrace(path)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "bad.ptrace"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_ptrace(path)

    def test_read_rejects_header_only(self, tmp_path):
        path = tmp_path / "bad.ptrace"
        path.write_text("a b\n")
        with pytest.raises(ValueError, match="no samples"):
            read_ptrace(path)

    def test_read_rejects_nonnumeric(self, tmp_path):
        path = tmp_path / "bad.ptrace"
        path.write_text("a\nxyz\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_ptrace(path)


class TestWorkloadExport:
    def test_trace_to_ptrace(self, tmp_path):
        plan = alpha_floorplan()
        unit_names = [unit.name for unit in plan.units]
        nominal = {unit.name: unit.power_w / 1.2 for unit in plan.units}
        trace = SyntheticWorkload("w").trace(unit_names, 8, seed=1)
        path = tmp_path / "w.ptrace"
        trace_to_ptrace(path, plan, trace, nominal)
        names, powers = read_ptrace(path)
        assert names == unit_names
        assert powers.shape == (8, len(unit_names))
        expected = trace.unit_power_series(nominal)
        assert np.allclose(powers, expected, atol=1e-6)
