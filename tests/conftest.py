"""Shared fixtures.

Expensive objects (the Alpha benchmark problem, its greedy solution,
deployed models) are session-scoped: they are deterministic, immutable
in the tests that share them, and dominate collection time otherwise.
Small synthetic instances are provided for tests that need fast
construction or mutation.
"""

import numpy as np
import pytest

from repro.core.deploy import greedy_deploy
from repro.core.problem import CoolingSystemProblem
from repro.experiments.benchmarks import load_benchmark
from repro.thermal.geometry import TileGrid
from repro.thermal.model import PackageThermalModel


@pytest.fixture(scope="session")
def alpha_problem():
    """The Alpha Table I benchmark problem (limit 85 C)."""
    return load_benchmark("alpha")


@pytest.fixture(scope="session")
def alpha_greedy(alpha_problem):
    """GreedyDeploy solution of the Alpha benchmark."""
    return greedy_deploy(alpha_problem)


@pytest.fixture(scope="session")
def alpha_model(alpha_problem):
    """Bare (no-TEC) Alpha package model."""
    return alpha_problem.model(())


@pytest.fixture(scope="session")
def alpha_deployed(alpha_greedy):
    """The Alpha model at the greedy deployment."""
    return alpha_greedy.model


def _hotspot_power_map(grid, base=0.08, hot=0.55, hot_tiles=(5, 6, 9, 10)):
    power = np.full(grid.num_tiles, base)
    for tile in hot_tiles:
        power[tile] = hot
    return power


@pytest.fixture(scope="session")
def small_grid():
    """A 4x4 grid of TEC-sized tiles (2 mm x 2 mm die)."""
    return TileGrid(4, 4)


@pytest.fixture(scope="session")
def small_power(small_grid):
    """A power map with a 2x2 hot block in the middle."""
    return _hotspot_power_map(small_grid)


@pytest.fixture(scope="session")
def small_model(small_grid, small_power):
    """Bare small package model."""
    return PackageThermalModel(small_grid, small_power)


@pytest.fixture(scope="session")
def small_deployed(small_grid, small_power):
    """Small package model with TECs over the hot block."""
    return PackageThermalModel(small_grid, small_power, tec_tiles=(5, 6, 9, 10))


@pytest.fixture(scope="session")
def small_problem(small_grid, small_power, small_model):
    """A feasible small cooling problem: limit between the bare peak
    and what the TECs can reach."""
    bare_peak = small_model.solve(0.0).peak_silicon_c
    return CoolingSystemProblem(
        small_grid,
        small_power,
        max_temperature_c=bare_peak - 0.5,
        name="small",
    )


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20100308)
