"""Unit and property tests of :mod:`repro.linalg.multigrid`.

The multigrid layer is pure linear algebra over a
:class:`~repro.linalg.multigrid.LatticeGeometry`; these tests build
synthetic layered-lattice Laplacians (random positive conductances, a
positive diagonal shift, optional off-lattice periphery nodes — the
same structure :mod:`repro.thermal.assembly` produces) and pin:

* aggregation invariants — per-layer 2x2 agglomeration partitions the
  nodes, never merges layers, and appends off-lattice singletons;
* the matrix-free stencil reproducing ``A @ x`` to round-off;
* the two-grid property (hypothesis): one V-cycle contracts the error
  in the energy norm for random right-hand sides and initial guesses;
* solver behaviour — convergence to a true-residual target, multi-RHS
  blocks, plan reuse, fork-safe pickling.
"""

import pickle

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.multigrid import (
    CYCLE_KINDS,
    LatticeGeometry,
    LatticeStencil,
    MultigridHierarchy,
    lattice_coarsen,
    mg_solve,
    pairwise_aggregates,
    tentative_prolongator,
    validate_lattice_geometry,
)


def _lattice_system(rows, cols, layers=2, periphery=0, seed=0, shift=1.0e-2):
    """A synthetic SPD layered-lattice operator with its geometry.

    Graph Laplacian over random positive conductances on the lattice
    edges (lateral within each layer, same-tile between consecutive
    layers, periphery nodes coupled to the last layer's first tiles)
    plus a positive diagonal shift — the structure of ``S + G``.
    """
    rng = np.random.default_rng(seed)
    tiles = rows * cols
    n = layers * tiles + periphery
    layer = np.full(n, -1, dtype=np.int64)
    tile = np.full(n, -1, dtype=np.int64)
    for li in range(layers):
        layer[li * tiles:(li + 1) * tiles] = li
        tile[li * tiles:(li + 1) * tiles] = np.arange(tiles)

    def node(li, r, c):
        return li * tiles + r * cols + c

    rows_idx, cols_idx, weights = [], [], []

    def couple(i, j):
        w = rng.uniform(0.5, 2.0)
        rows_idx.extend((i, j))
        cols_idx.extend((j, i))
        weights.extend((w, w))

    for li in range(layers):
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    couple(node(li, r, c), node(li, r, c + 1))
                if r + 1 < rows:
                    couple(node(li, r, c), node(li, r + 1, c))
                if li + 1 < layers:
                    couple(node(li, r, c), node(li + 1, r, c))
    for p in range(periphery):
        couple(layers * tiles + p, node(layers - 1, 0, p % cols))

    adjacency = sp.coo_matrix(
        (weights, (rows_idx, cols_idx)), shape=(n, n)
    ).tocsr()
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    matrix = sp.diags(degrees + shift) - adjacency
    geometry = LatticeGeometry(rows=rows, cols=cols, layer=layer, tile=tile)
    return matrix.tocsr(), geometry


_CACHE = {}


def _cached(rows, cols, **kwargs):
    key = (rows, cols, tuple(sorted(kwargs.items())))
    if key not in _CACHE:
        matrix, geometry = _lattice_system(rows, cols, **kwargs)
        _CACHE[key] = (matrix, geometry, MultigridHierarchy(
            matrix, geometry=geometry, coarse_size=40
        ))
    return _CACHE[key]


class TestLatticeCoarsen:
    @given(
        rows=st.integers(min_value=1, max_value=9),
        cols=st.integers(min_value=1, max_value=9),
        layers=st.integers(min_value=1, max_value=3),
        periphery=st.integers(min_value=0, max_value=3),
    )
    @settings(deadline=None, max_examples=40)
    def test_partition_invariants(self, rows, cols, layers, periphery):
        _, geometry = _lattice_system(
            rows, cols, layers=layers, periphery=periphery
        )
        agg, coarse = lattice_coarsen(geometry)
        # A partition: every node lands in exactly one aggregate and
        # the aggregate ids are dense.
        assert agg.min() >= 0
        assert set(np.unique(agg)) == set(range(agg.max() + 1))
        assert coarse.num_nodes == agg.max() + 1
        # Layers are never merged (semicoarsening).
        for a in range(agg.max() + 1):
            members = np.flatnonzero(agg == a)
            assert len(set(geometry.layer[members])) == 1
        # Off-lattice nodes stay singletons.
        for i in np.flatnonzero(~geometry.on_lattice()):
            assert np.count_nonzero(agg == agg[i]) == 1
        assert coarse.rows == (rows + 1) // 2
        assert coarse.cols == (cols + 1) // 2

    def test_2x2_blocks_agglomerate(self):
        _, geometry = _lattice_system(4, 4, layers=1)
        agg, _ = lattice_coarsen(geometry)
        block = [0 * 4 + 0, 0 * 4 + 1, 1 * 4 + 0, 1 * 4 + 1]  # tiles (0:2, 0:2)
        assert len({agg[t] for t in block}) == 1
        other = [0 * 4 + 2, 0 * 4 + 3, 1 * 4 + 2, 1 * 4 + 3]
        assert len({agg[t] for t in other}) == 1
        assert agg[block[0]] != agg[other[0]]

    def test_coarsening_terminates(self):
        _, geometry = _lattice_system(16, 16, layers=2)
        for _ in range(10):
            agg, geometry = lattice_coarsen(geometry)
            if geometry.rows == 1 and geometry.cols == 1:
                break
        assert geometry.rows == 1 and geometry.cols == 1


class TestPairwiseAggregates:
    def test_partition_with_small_aggregates(self):
        matrix, _ = _lattice_system(4, 4, layers=1)
        agg = pairwise_aggregates(matrix)
        assert agg.min() >= 0
        sizes = np.bincount(agg)
        assert sizes.max() <= 2  # pairwise: at most two nodes per aggregate
        assert sizes.sum() == matrix.shape[0]

    def test_deterministic(self):
        matrix, _ = _lattice_system(5, 3, layers=2, seed=7)
        np.testing.assert_array_equal(
            pairwise_aggregates(matrix), pairwise_aggregates(matrix)
        )


class TestTentativeProlongator:
    def test_piecewise_constant(self):
        agg = np.array([0, 0, 1, 2, 1])
        prolong = tentative_prolongator(agg)
        assert prolong.shape == (5, 3)
        dense = prolong.toarray()
        np.testing.assert_array_equal(dense.sum(axis=1), np.ones(5))
        np.testing.assert_array_equal(dense.sum(axis=0), [2, 2, 1])


class TestLatticeStencil:
    @pytest.mark.parametrize("periphery", [0, 3])
    def test_apply_matches_matrix(self, periphery):
        matrix, geometry = _lattice_system(
            6, 5, layers=3, periphery=periphery, seed=3
        )
        stencil = LatticeStencil(matrix, geometry)
        rng = np.random.default_rng(11)
        x = rng.standard_normal(matrix.shape[0])
        expected = matrix @ x
        scale = np.linalg.norm(expected)
        assert np.linalg.norm(stencil.apply_G(x) - expected) <= 1e-13 * scale

    def test_block_rhs(self):
        matrix, geometry = _lattice_system(4, 4, layers=2, periphery=2)
        stencil = LatticeStencil(matrix, geometry)
        rng = np.random.default_rng(5)
        block = rng.standard_normal((matrix.shape[0], 3))
        np.testing.assert_allclose(
            stencil.apply_G(block), matrix @ block, rtol=0, atol=1e-12
        )

    def test_pure_lattice_has_no_residual(self):
        matrix, geometry = _lattice_system(4, 4, layers=2, periphery=0)
        assert LatticeStencil(matrix, geometry).residual_nnz == 0

    def test_periphery_lands_in_residual(self):
        matrix, geometry = _lattice_system(4, 4, layers=2, periphery=2)
        stencil = LatticeStencil(matrix, geometry)
        # Two symmetric periphery couplings: 4 off-diagonal entries.
        assert stencil.residual_nnz == 4

    def test_size_mismatch_rejected(self):
        matrix, _ = _lattice_system(4, 4)
        _, other = _lattice_system(4, 5)
        with pytest.raises(ValueError, match="nodes"):
            LatticeStencil(matrix, other)

    def test_nbytes_positive(self):
        matrix, geometry = _lattice_system(4, 4)
        assert LatticeStencil(matrix, geometry).nbytes() > 0


class TestHierarchy:
    def test_structure(self):
        matrix, geometry, hierarchy = _cached(16, 16, layers=2, periphery=3)
        assert hierarchy.num_levels >= 3
        assert hierarchy.fine_size == matrix.shape[0]
        assert hierarchy._coarse_matrix.shape[0] <= 40 + 3
        # Galerkin coarse operators stay symmetric with positive
        # diagonals — the SPD structure CG relies on.
        for level in hierarchy.levels[1:]:
            op = level.matrix
            assert abs(op - op.T).max() <= 1e-10 * abs(op).max()
            assert level.matrix.diagonal().min() > 0.0
        assert len(hierarchy.plan) == hierarchy.num_levels - 1

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(deadline=None, max_examples=25)
    def test_two_grid_energy_contraction(self, seed):
        """One V-cycle contracts the error in the energy norm."""
        matrix, _, hierarchy = _cached(16, 16, layers=2, periphery=3)
        rng = np.random.default_rng(seed)
        x_true = rng.standard_normal(matrix.shape[0])
        b = matrix @ x_true
        x0 = rng.standard_normal(matrix.shape[0])
        x1 = hierarchy.cycle(b, x0=x0)

        def energy(e):
            return float(np.sqrt(e @ (matrix @ e)))

        e0, e1 = energy(x0 - x_true), energy(x1 - x_true)
        assert e1 < 0.5 * e0

    def test_invalid_options_rejected(self):
        matrix, geometry = _lattice_system(4, 4)
        with pytest.raises(ValueError, match="smoother"):
            MultigridHierarchy(matrix, geometry=geometry, smoother="sor")
        with pytest.raises(ValueError, match="cycle_kind"):
            MultigridHierarchy(matrix, geometry=geometry, cycle_kind="W")
        hierarchy = MultigridHierarchy(matrix, geometry=geometry)
        with pytest.raises(ValueError, match="kind"):
            hierarchy.cycle(np.ones(matrix.shape[0]), kind="W")

    def test_plan_reuse_matches_fresh_build(self):
        matrix, geometry, hierarchy = _cached(8, 8, layers=2)
        rebuilt = MultigridHierarchy(
            matrix, geometry=geometry, plan=hierarchy.plan, coarse_size=40
        )
        assert rebuilt.num_levels == hierarchy.num_levels
        for mine, theirs in zip(rebuilt.plan, hierarchy.plan):
            np.testing.assert_array_equal(mine, theirs)
        b = np.linspace(0.0, 1.0, matrix.shape[0])
        np.testing.assert_array_equal(rebuilt.cycle(b), hierarchy.cycle(b))

    def test_pickle_drops_coarse_factorization(self):
        matrix, geometry = _lattice_system(8, 8, layers=2)
        hierarchy = MultigridHierarchy(
            matrix, geometry=geometry, coarse_size=40
        )
        b = np.ones(matrix.shape[0])
        warm = hierarchy.cycle(b)
        assert hierarchy._coarse_lu is not None  # live splu handle
        clone = pickle.loads(pickle.dumps(hierarchy))
        assert clone._coarse_lu is None
        np.testing.assert_array_equal(clone.cycle(b), warm)

    def test_operator_bytes_accounts_stencil_and_factor(self):
        matrix, geometry = _lattice_system(8, 8, layers=2)
        hierarchy = MultigridHierarchy(
            matrix, geometry=geometry, coarse_size=40
        )
        cold = hierarchy.operator_bytes()
        assert cold > hierarchy.levels[0].stencil.nbytes()
        hierarchy.cycle(np.ones(matrix.shape[0]))
        assert hierarchy.operator_bytes() > cold  # + coarse factor fill

    def test_cycle_counter(self):
        _, _, hierarchy = _cached(8, 8, layers=2)
        before = hierarchy.cycles
        hierarchy.precondition(np.ones(hierarchy.fine_size))
        assert hierarchy.cycles == before + 1


class TestMgSolve:
    def test_converges_to_true_residual(self):
        matrix, geometry = _lattice_system(16, 16, layers=2, periphery=3)
        rng = np.random.default_rng(2)
        rhs = rng.standard_normal(matrix.shape[0])
        x, report = mg_solve(matrix, rhs, geometry=geometry, rtol=1e-10)
        assert report.converged
        assert report.cycles >= 1
        residual = np.linalg.norm(rhs - matrix @ x) / np.linalg.norm(rhs)
        assert residual <= 1e-10

    def test_block_rhs(self):
        matrix, geometry = _lattice_system(8, 8, layers=2)
        rng = np.random.default_rng(4)
        rhs = rng.standard_normal((matrix.shape[0], 3))
        x, report = mg_solve(matrix, rhs, geometry=geometry, rtol=1e-10)
        assert report.converged
        assert x.shape == rhs.shape
        np.testing.assert_allclose(matrix @ x, rhs, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("kind", CYCLE_KINDS)
    def test_cycle_kinds_converge(self, kind):
        matrix, geometry = _lattice_system(8, 8, layers=2)
        rhs = np.ones(matrix.shape[0])
        x, report = mg_solve(
            matrix, rhs, geometry=geometry, cycle_kind=kind, rtol=1e-10
        )
        assert report.converged
        assert report.cycle_kind == kind

    def test_jacobi_smoother_converges(self):
        matrix, geometry = _lattice_system(8, 8, layers=2)
        rhs = np.ones(matrix.shape[0])
        _, report = mg_solve(
            matrix, rhs, geometry=geometry, smoother="jacobi", rtol=1e-9
        )
        assert report.converged

    def test_pairwise_fallback_without_geometry(self):
        matrix, _ = _lattice_system(6, 6, layers=2)
        rhs = np.ones(matrix.shape[0])
        x, report = mg_solve(matrix, rhs, rtol=1e-9, coarse_size=10)
        assert report.converged
        assert np.linalg.norm(rhs - matrix @ x) <= 1e-9 * np.linalg.norm(rhs)

    def test_nonconvergence_reported_not_raised(self):
        matrix, geometry = _lattice_system(8, 8, layers=2)
        rhs = np.ones(matrix.shape[0])
        _, report = mg_solve(
            matrix, rhs, geometry=geometry, rtol=1e-15, maxiter=1
        )
        assert not report.converged
        assert report.cycles == 1

    def test_reuses_passed_hierarchy(self):
        matrix, geometry, hierarchy = _cached(8, 8, layers=2)
        rhs = np.ones(matrix.shape[0])
        before = hierarchy.cycles
        _, report = mg_solve(matrix, rhs, hierarchy=hierarchy, rtol=1e-10)
        assert hierarchy.cycles == before + report.cycles


class TestGeometryValidation:
    """Graceful degradation when the lattice geometry is unusable.

    A stale or inconsistent geometry (e.g. a cached plan replayed
    against a differently-sized system) must not crash the hierarchy
    or silently mis-coarsen: :func:`validate_lattice_geometry` rejects
    it and the build falls back to pairwise aggregation, recording the
    downgrade in :class:`MgReport.coarsening`.
    """

    def test_valid_geometry_accepted(self):
        matrix, geometry = _lattice_system(6, 6, layers=2, periphery=2)
        assert validate_lattice_geometry(matrix.shape[0], geometry)

    def test_size_mismatch_rejected(self):
        matrix, _ = _lattice_system(6, 6, layers=2)
        _, stale = _lattice_system(6, 5, layers=2)
        assert not validate_lattice_geometry(matrix.shape[0], stale)

    def test_duplicate_layer_tile_rejected(self):
        matrix, geometry = _lattice_system(4, 4, layers=1)
        tile = geometry.tile.copy()
        tile[1] = tile[0]  # two nodes on the same lattice site
        broken = LatticeGeometry(
            rows=geometry.rows, cols=geometry.cols,
            layer=geometry.layer, tile=tile,
        )
        assert not validate_lattice_geometry(matrix.shape[0], broken)

    def test_out_of_range_tile_rejected(self):
        matrix, geometry = _lattice_system(4, 4, layers=1)
        tile = geometry.tile.copy()
        tile[0] = geometry.rows * geometry.cols  # beyond the lattice
        broken = LatticeGeometry(
            rows=geometry.rows, cols=geometry.cols,
            layer=geometry.layer, tile=tile,
        )
        assert not validate_lattice_geometry(matrix.shape[0], broken)

    def test_all_off_lattice_rejected(self):
        matrix, geometry = _lattice_system(3, 3, layers=1)
        off = np.full_like(geometry.tile, -1)
        broken = LatticeGeometry(
            rows=geometry.rows, cols=geometry.cols,
            layer=np.full_like(geometry.layer, -1), tile=off,
        )
        assert not validate_lattice_geometry(matrix.shape[0], broken)

    def test_lattice_coarsening_reported(self):
        matrix, geometry = _lattice_system(8, 8, layers=2)
        rhs = np.ones(matrix.shape[0])
        _, report = mg_solve(matrix, rhs, geometry=geometry, rtol=1e-9)
        assert report.converged
        assert report.coarsening == "lattice"

    def test_stale_geometry_degrades_and_still_converges(self):
        matrix, _ = _lattice_system(8, 8, layers=2, seed=9)
        _, stale = _lattice_system(8, 7, layers=2)  # wrong node count
        rng = np.random.default_rng(13)
        rhs = rng.standard_normal(matrix.shape[0])
        x, report = mg_solve(
            matrix, rhs, geometry=stale, rtol=1e-9, coarse_size=10
        )
        assert report.converged
        assert report.coarsening == "pairwise"
        residual = np.linalg.norm(rhs - matrix @ x) / np.linalg.norm(rhs)
        assert residual <= 1e-9
        # Same answer as the healthy lattice-coarsened solve.
        x_good, good = mg_solve(matrix, rhs, rtol=1e-12, coarse_size=10)
        assert np.max(np.abs(x - x_good)) <= 1e-6 * max(1.0, np.max(np.abs(x_good)))

    def test_hierarchy_records_coarsening_mode(self):
        matrix, geometry = _lattice_system(6, 6, layers=2)
        with_geom = MultigridHierarchy(
            matrix, geometry=geometry, coarse_size=10
        )
        assert with_geom.coarsening == "lattice"
        without = MultigridHierarchy(matrix, coarse_size=10)
        assert without.coarsening == "pairwise"
