"""Positive-definiteness oracles (the lambda_m binary-search primitive)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.spd import (
    cholesky_is_spd,
    is_positive_definite,
    smallest_eigenvalue_symmetric_part,
)
from repro.linalg.stieltjes import random_stieltjes


class TestCholeskyOracle:
    def test_identity(self):
        assert cholesky_is_spd(np.eye(4))

    def test_negative_definite(self):
        assert not cholesky_is_spd(-np.eye(4))

    def test_singular(self):
        assert not cholesky_is_spd(np.zeros((3, 3)))

    def test_indefinite(self):
        assert not cholesky_is_spd(np.diag([1.0, -1.0]))

    def test_sparse_matches_dense(self):
        matrix = random_stieltjes(15, seed=2)
        assert cholesky_is_spd(sp.csr_matrix(matrix)) == cholesky_is_spd(matrix)

    def test_sparse_indefinite(self):
        matrix = random_stieltjes(10, seed=4)
        matrix[0, 0] = -10.0
        assert not cholesky_is_spd(sp.csr_matrix(matrix))

    def test_empty_matrix_trivially_spd(self):
        assert cholesky_is_spd(np.zeros((0, 0)))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            cholesky_is_spd(np.zeros((2, 3)))


class TestQuadraticFormDefiniteness:
    def test_nonsymmetric_with_pd_symmetric_part(self):
        # M = I + skew: x'Mx = x'x > 0 despite asymmetry.
        matrix = np.eye(2) + np.array([[0.0, 5.0], [-5.0, 0.0]])
        assert is_positive_definite(matrix)

    def test_nonsymmetric_with_indefinite_symmetric_part(self):
        matrix = np.array([[1.0, 5.0], [1.0, 1.0]])  # sym part [[1,3],[3,1]]
        assert not is_positive_definite(matrix)

    def test_symmetric_flag_consistency(self):
        matrix = random_stieltjes(8, seed=6)
        assert is_positive_definite(matrix, symmetric=True)
        assert is_positive_definite(matrix, symmetric=None)

    def test_tolerance(self):
        assert not is_positive_definite(np.eye(2) * 1e-13, tol=1e-12)


class TestSmallestEigenvalue:
    def test_matches_eigh_for_symmetric(self):
        matrix = random_stieltjes(7, seed=8)
        expected = float(np.linalg.eigvalsh(matrix)[0])
        assert smallest_eigenvalue_symmetric_part(matrix) == pytest.approx(expected)

    def test_uses_symmetric_part(self):
        matrix = np.eye(2) + np.array([[0.0, 9.0], [-9.0, 0.0]])
        assert smallest_eigenvalue_symmetric_part(matrix) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            smallest_eigenvalue_symmetric_part(np.zeros((0, 0)))

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_oracle_agrees_with_eigenvalues(self, n, seed):
        matrix = random_stieltjes(n, seed=seed)
        shift = np.linalg.eigvalsh(matrix)[0] * 1.5
        shifted = matrix - shift * np.eye(n)  # makes it indefinite
        assert cholesky_is_spd(matrix)
        assert not cholesky_is_spd(shifted)
