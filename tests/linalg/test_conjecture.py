"""The Conjecture 1 verification machinery (Section V.C.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.conjecture import (
    conjecture1_holds,
    conjecture1_witness,
    run_conjecture_campaign,
)
from repro.linalg.inverse_positive import inverse_nonnegative_matrix
from repro.linalg.stieltjes import random_stieltjes


class TestWitness:
    def test_positive_margin_on_random_instance(self):
        margin, pair = conjecture1_witness(random_stieltjes(6, seed=1))
        assert margin > 0.0
        assert all(0 <= idx < 6 for idx in pair)

    def test_explicit_pairs_subset(self):
        matrix = random_stieltjes(5, seed=2)
        margin, pair = conjecture1_witness(matrix, pairs=[(0, 0), (1, 4)])
        assert pair in [(0, 0), (1, 4)]
        assert margin > 0.0

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            conjecture1_witness(random_stieltjes(4, seed=3), pairs=[])

    def test_witness_matches_manual_computation(self):
        matrix = random_stieltjes(4, seed=4)
        h = inverse_nonnegative_matrix(matrix)
        k, l = 1, 2
        candidate = np.diag(h[k]) @ h @ np.diag(h[l])
        sym = 0.5 * (candidate + candidate.T)
        expected = float(np.linalg.eigvalsh(sym)[0])
        margin, _ = conjecture1_witness(matrix, pairs=[(k, l)])
        assert margin == pytest.approx(expected)

    def test_check_rejects_bad_input(self):
        with pytest.raises(ValueError):
            conjecture1_witness(np.array([[1.0, 0.5], [0.5, 1.0]]))


class TestHolds:
    def test_holds_on_random(self):
        assert conjecture1_holds(random_stieltjes(7, seed=5))

    def test_theorem3_link(self):
        """Conjecture 1 margin > 0 implies h_kl''(i) = 2 d'(...)d > 0."""
        matrix = random_stieltjes(5, seed=6)
        h = inverse_nonnegative_matrix(matrix)
        d_vec = np.array([0.3, -0.3, 0.0, 0.1, 0.0])
        for k in range(5):
            for l in range(5):
                quad = d_vec @ (np.diag(h[k]) @ h @ np.diag(h[l])) @ d_vec
                if np.any(d_vec):
                    assert quad > 0.0


class TestCampaign:
    def test_small_campaign_holds(self):
        result = run_conjecture_campaign(30, size_range=(3, 7), seed=7)
        assert result.holds
        assert result.matrices_tested == 30
        assert result.worst_margin > 0.0

    def test_pair_counts_all_pairs(self):
        result = run_conjecture_campaign(5, size_range=(4, 4), seed=8)
        assert result.pairs_tested == 5 * 16

    def test_pair_sampling(self):
        result = run_conjecture_campaign(
            5, size_range=(6, 6), pairs_per_matrix=3, seed=9
        )
        assert result.pairs_tested == 15

    def test_deterministic(self):
        a = run_conjecture_campaign(10, seed=11)
        b = run_conjecture_campaign(10, seed=11)
        assert a.worst_margin == b.worst_margin
        assert a.sizes == b.sizes

    def test_zero_matrices(self):
        result = run_conjecture_campaign(0, seed=0)
        assert result.holds and result.matrices_tested == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            run_conjecture_campaign(-1)

    def test_bad_size_range(self):
        with pytest.raises(ValueError):
            run_conjecture_campaign(1, size_range=(5, 3))

    @given(st.integers(min_value=2, max_value=9), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_conjecture_holds_per_matrix(self, n, seed):
        """The paper's randomized claim, as a hypothesis property."""
        assert conjecture1_holds(random_stieltjes(n, seed=seed))
