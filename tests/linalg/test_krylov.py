"""Preconditioned Krylov solves: convergence, reporting, preconditioners."""

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator, splu

from repro.linalg.krylov import (
    DEFAULT_RTOL,
    KRYLOV_METHODS,
    KrylovReport,
    krylov_solve,
)
from repro.linalg.stieltjes import random_stieltjes


@pytest.fixture()
def stieltjes_system():
    matrix = random_stieltjes(30, seed=7)
    rng = np.random.default_rng(7)
    rhs = rng.normal(size=30)
    return sp.csr_matrix(matrix), rhs


class TestConvergence:
    def test_matches_dense_solve(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        x, report = krylov_solve(matrix, rhs)
        assert report.converged
        assert np.allclose(x, np.linalg.solve(matrix.toarray(), rhs))

    def test_true_residual_below_target(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        x, report = krylov_solve(matrix, rhs)
        residual = np.linalg.norm(rhs - matrix @ x) / np.linalg.norm(rhs)
        assert residual <= DEFAULT_RTOL
        assert report.residual <= DEFAULT_RTOL

    @pytest.mark.parametrize("method", KRYLOV_METHODS)
    def test_every_method(self, stieltjes_system, method):
        matrix, rhs = stieltjes_system
        x, report = krylov_solve(matrix, rhs, method=method)
        assert report.converged
        assert report.method == method
        assert np.allclose(x, np.linalg.solve(matrix.toarray(), rhs))

    def test_dense_matrix_accepted(self):
        matrix = np.diag([2.0, 3.0, 4.0])
        x, report = krylov_solve(matrix, np.ones(3))
        assert report.converged
        assert np.allclose(x, [0.5, 1.0 / 3.0, 0.25])


class TestMultiRhs:
    def test_block_matches_per_column(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        block = np.column_stack([rhs, 2.0 * rhs, np.ones_like(rhs)])
        x, report = krylov_solve(matrix, block)
        assert x.shape == block.shape
        assert report.converged
        for j in range(block.shape[1]):
            xj, _ = krylov_solve(matrix, block[:, j])
            assert np.allclose(x[:, j], xj)

    def test_zero_column_costs_no_iterations(self, stieltjes_system):
        matrix, _ = stieltjes_system
        x, report = krylov_solve(matrix, np.zeros(matrix.shape[0]))
        assert report.converged
        assert report.iterations == 0
        assert np.array_equal(x, np.zeros(matrix.shape[0]))

    def test_iterations_sum_over_columns(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        _, single = krylov_solve(matrix, rhs)
        _, block = krylov_solve(matrix, np.column_stack([rhs, rhs]))
        assert block.iterations == 2 * single.iterations


class TestPreconditioners:
    def test_splu_preconditioner_converges_immediately(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        lu = splu(matrix.tocsc())
        x, report = krylov_solve(matrix, rhs, preconditioner=lu)
        # the exact inverse as preconditioner: one or two iterations
        assert report.converged
        assert report.iterations <= 2
        assert np.allclose(x, lu.solve(rhs))

    def test_callable_preconditioner(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        diag = matrix.diagonal()
        x, report = krylov_solve(matrix, rhs, preconditioner=lambda v: v / diag)
        assert report.converged

    def test_linear_operator_preconditioner(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        n = matrix.shape[0]
        op = LinearOperator((n, n), matvec=lambda v: v, dtype=float)
        x, report = krylov_solve(matrix, rhs, preconditioner=op)
        assert report.converged

    def test_invalid_preconditioner_rejected(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        with pytest.raises(TypeError, match="preconditioner"):
            krylov_solve(matrix, rhs, preconditioner=object())


class TestFailureReporting:
    def test_exhausted_budget_reported_not_raised(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        x, report = krylov_solve(matrix, rhs, maxiter=1, restart=1)
        assert isinstance(report, KrylovReport)
        assert not report.converged
        assert report.residual > DEFAULT_RTOL
        assert np.all(np.isfinite(x))

    def test_one_failed_column_fails_the_block(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        block = np.column_stack([np.zeros_like(rhs), rhs])
        _, report = krylov_solve(matrix, block, maxiter=1, restart=1)
        assert not report.converged

    def test_invalid_method_rejected(self, stieltjes_system):
        matrix, rhs = stieltjes_system
        with pytest.raises(ValueError, match="method"):
            krylov_solve(matrix, rhs, method="jacobi")
