"""Irreducibility via adjacency-graph connectivity (Definition 1)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.irreducible import (
    adjacency_graph,
    irreducible_components,
    is_irreducible,
)


def _path_matrix(n):
    matrix = 2.0 * np.eye(n)
    for k in range(n - 1):
        matrix[k, k + 1] = matrix[k + 1, k] = -1.0
    return matrix


class TestAdjacencyGraph:
    def test_path_graph_edges(self):
        graph = adjacency_graph(_path_matrix(4))
        assert graph.number_of_edges() == 3

    def test_diagonal_ignored(self):
        graph = adjacency_graph(np.diag([1.0, 2.0]))
        assert graph.number_of_edges() == 0
        assert graph.number_of_nodes() == 2

    def test_sparse_input(self):
        graph = adjacency_graph(sp.csr_matrix(_path_matrix(5)))
        assert graph.number_of_edges() == 4

    def test_tolerance_filters_tiny_entries(self):
        matrix = np.array([[1.0, 1e-15], [1e-15, 1.0]])
        assert adjacency_graph(matrix, tol=1e-12).number_of_edges() == 0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            adjacency_graph(np.zeros((2, 3)))


class TestIsIrreducible:
    def test_path_is_irreducible(self):
        assert is_irreducible(_path_matrix(6))

    def test_block_diagonal_is_reducible(self):
        matrix = np.zeros((4, 4))
        matrix[:2, :2] = _path_matrix(2)
        matrix[2:, 2:] = _path_matrix(2)
        assert not is_irreducible(matrix)

    def test_one_by_one_is_irreducible(self):
        assert is_irreducible(np.array([[3.0]]))

    def test_diagonal_matrix_reducible(self):
        assert not is_irreducible(np.eye(3))


class TestComponents:
    def test_single_component(self):
        comps = irreducible_components(_path_matrix(4))
        assert comps == [[0, 1, 2, 3]]

    def test_two_components(self):
        matrix = np.zeros((5, 5))
        matrix[:3, :3] = _path_matrix(3)
        matrix[3:, 3:] = _path_matrix(2)
        comps = sorted(irreducible_components(matrix))
        assert comps == [[0, 1, 2], [3, 4]]
