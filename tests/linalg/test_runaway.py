"""The runaway current lambda_m (Theorem 1, Theorem 2)."""

import math

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.runaway import (
    rayleigh_quotient_bound,
    runaway_current,
    runaway_current_binary_search,
    runaway_current_eigen,
    runaway_current_shift_invert,
)
from repro.linalg.spd import cholesky_is_spd
from repro.linalg.stieltjes import random_stieltjes


def _instance(n, seed, hot=0, cold=1, alpha=0.05):
    matrix = random_stieltjes(n, seed=seed)
    diag = np.zeros(n)
    diag[hot] = alpha
    diag[cold] = -alpha
    return matrix, diag


class TestEigenMethod:
    def test_analytic_two_by_two(self):
        # G = [[2,-1],[-1,2]], D = diag(a, 0): G - i a e1 e1' singular
        # when det = (2 - i a) * 2 - 1 = 0  =>  i = 1.5 / a.
        g = np.array([[2.0, -1.0], [-1.0, 2.0]])
        d = np.array([0.5, 0.0])
        result = runaway_current_eigen(g, d)
        assert result.value == pytest.approx(3.0)

    def test_singularity_at_lambda_m(self):
        g, d = _instance(8, seed=1)
        lam = runaway_current_eigen(g, d).value
        sign, logdet = np.linalg.slogdet(g - lam * np.diag(d))
        assert abs(sign * math.exp(logdet)) < 1e-6 * abs(np.linalg.det(g))

    def test_theorem1_dichotomy(self):
        g, d = _instance(8, seed=2)
        lam = runaway_current_eigen(g, d).value
        assert cholesky_is_spd(g - 0.999 * lam * np.diag(d))
        assert not cholesky_is_spd(g - 1.001 * lam * np.diag(d))

    def test_infinite_when_no_positive_entry(self):
        g = random_stieltjes(5, seed=3)
        d = np.zeros(5)
        d[0] = -0.1
        assert math.isinf(runaway_current_eigen(g, d).value)

    def test_zero_d_infinite(self):
        g = random_stieltjes(5, seed=3)
        assert math.isinf(runaway_current_eigen(g, np.zeros(5)).value)

    def test_sparse_matches_dense(self):
        g, d = _instance(12, seed=4)
        dense = runaway_current_eigen(g, d).value
        sparse = runaway_current_eigen(sp.csr_matrix(g), sp.diags(d)).value
        assert sparse == pytest.approx(dense, rel=1e-9)

    def test_d_as_full_matrix(self):
        g, d = _instance(6, seed=5)
        assert runaway_current_eigen(g, np.diag(d)).value == pytest.approx(
            runaway_current_eigen(g, d).value
        )

    def test_nondiagonal_d_rejected(self):
        g = random_stieltjes(3, seed=0)
        bad = np.array([[1.0, 0.5, 0], [0.5, 0, 0], [0, 0, 0]])
        with pytest.raises(ValueError, match="diagonal"):
            runaway_current_eigen(g, bad)


class TestBinarySearch:
    def test_matches_eigen(self):
        g, d = _instance(10, seed=6)
        eigen = runaway_current_eigen(g, d).value
        search = runaway_current_binary_search(g, d, tolerance=1e-10)
        assert search.value == pytest.approx(eigen, rel=1e-7)

    def test_bracket_contains_value(self):
        g, d = _instance(7, seed=7)
        result = runaway_current_binary_search(g, d)
        lo, hi = result.bracket
        assert lo <= result.value <= hi

    def test_iterations_counted(self):
        g, d = _instance(7, seed=7)
        assert runaway_current_binary_search(g, d).iterations > 0

    def test_infinite_when_d_nonpositive(self):
        g = random_stieltjes(4, seed=8)
        result = runaway_current_binary_search(g, -np.ones(4))
        assert math.isinf(result.value)

    def test_rejects_indefinite_g(self):
        with pytest.raises(ValueError, match="positive definite"):
            runaway_current_binary_search(-np.eye(3), np.ones(3))


class TestDispatcher:
    def test_default_is_eigen(self):
        g, d = _instance(5, seed=9)
        assert runaway_current(g, d).method == "eigen"

    def test_binary_search_dispatch(self):
        g, d = _instance(5, seed=9)
        assert runaway_current(g, d, method="binary-search").method == "binary-search"

    def test_unknown_method(self):
        g, d = _instance(5, seed=9)
        with pytest.raises(ValueError, match="unknown method"):
            runaway_current(g, d, method="newton")


class TestRayleighBound:
    def test_upper_bounds_lambda_m(self):
        g, d = _instance(9, seed=10)
        lam = runaway_current_eigen(g, d).value
        x = np.zeros(9)
        x[0] = 1.0  # hot-node unit vector has x'Dx > 0
        assert rayleigh_quotient_bound(g, d, x) >= lam - 1e-9

    def test_rejects_nonpositive_denominator(self):
        g, d = _instance(9, seed=10)
        x = np.zeros(9)
        x[1] = 1.0  # cold node: x'Dx < 0
        with pytest.raises(ValueError):
            rayleigh_quotient_bound(g, d, x)


class TestRunawayProperties:
    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_dichotomy_and_agreement(self, n, seed, alpha):
        g, d = _instance(n, seed=seed, alpha=alpha)
        lam = runaway_current_eigen(g, d).value
        assert lam > 0.0
        assert cholesky_is_spd(g - 0.99 * lam * np.diag(d))
        assert not cholesky_is_spd(g - 1.01 * lam * np.diag(d))
        search = runaway_current_binary_search(g, d, tolerance=1e-9)
        assert search.value == pytest.approx(lam, rel=1e-5)


class TestShiftInvert:
    """Warm-started inverse iteration on the pencil (G, D)."""

    @pytest.fixture(scope="class")
    def pencil(self):
        g, d = _instance(16, seed=11, hot=4, cold=9, alpha=0.2)
        exact, vector = runaway_current_eigen(g, d, return_vector=True)
        return g, d, exact.value, vector

    @staticmethod
    def _solve(g, d):
        """The `solve(current, rhs)` oracle: a Cholesky solve that, like
        the real solve engine, raises on an indefinite shifted system."""
        import scipy.linalg

        def solve(current, rhs):
            return scipy.linalg.cho_solve(
                scipy.linalg.cho_factor(g - current * np.diag(d)), rhs
            )

        return solve

    def test_converges_from_perturbed_seed(self, pencil):
        g, d, exact, vector = pencil
        rng = np.random.default_rng(0)
        guess = vector + 0.05 * rng.standard_normal(vector.shape)
        result, out = runaway_current_shift_invert(
            self._solve(g, d), g, d, guess=guess
        )
        assert result is not None
        assert result.method == "shift-invert"
        assert result.iterations > 0
        assert result.value == pytest.approx(exact, rel=1e-6)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_value_is_certified_upper_bound(self, pencil):
        """The returned Rayleigh quotient can never undershoot lambda_m
        (Theorem 1's variational characterization)."""
        g, d, exact, vector = pencil
        rng = np.random.default_rng(1)
        guess = vector + 0.1 * rng.standard_normal(vector.shape)
        result, _ = runaway_current_shift_invert(
            self._solve(g, d), g, d, guess=guess
        )
        assert result.value >= exact * (1.0 - 1e-9)

    def test_explicit_shift_hint(self, pencil):
        """The incremental engine passes 0.6x the previous round's
        lambda_m as the starting shift."""
        g, d, exact, vector = pencil
        result, _ = runaway_current_shift_invert(
            self._solve(g, d), g, d, guess=vector, shift=0.6 * exact
        )
        assert result is not None
        assert result.value == pytest.approx(exact, rel=1e-6)

    def test_overshooting_shift_recovers(self, pencil):
        """A shift beyond lambda_m makes the shifted system indefinite;
        the geometric backoff must recover and still converge."""
        g, d, exact, vector = pencil
        result, _ = runaway_current_shift_invert(
            self._solve(g, d), g, d, guess=vector, shift=1.5 * exact
        )
        assert result is not None
        assert result.value == pytest.approx(exact, rel=1e-6)

    def test_budget_exhaustion_returns_none_pair(self, pencil):
        g, d, exact, vector = pencil
        rng = np.random.default_rng(2)
        guess = vector + 0.05 * rng.standard_normal(vector.shape)
        result, out = runaway_current_shift_invert(
            self._solve(g, d), g, d, guess=guess, max_iterations=1
        )
        assert result is None and out is None

    def test_degenerate_seed_rejected(self, pencil):
        g, d, _, _ = pencil
        result, out = runaway_current_shift_invert(
            self._solve(g, d), g, d, guess=np.zeros(16)
        )
        assert result is None and out is None
        # x' D x <= 0: the hot entry is zeroed, only the cold one acts.
        bad = np.zeros(16)
        bad[9] = 1.0
        result, out = runaway_current_shift_invert(
            self._solve(g, d), g, d, guess=bad
        )
        assert result is None and out is None

    def test_no_positive_d_is_infinite(self, pencil):
        g, _, _, _ = pencil
        result, out = runaway_current_shift_invert(
            self._solve(g, np.zeros(16)), g, np.zeros(16),
            guess=np.ones(16),
        )
        assert math.isinf(result.value)
        assert out is None
