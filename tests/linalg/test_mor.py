"""Moment-matched model-order reduction: the linalg-layer contracts.

Two levels are pinned here:

* **Moment matching** (hypothesis) — the one-sided Galerkin projection
  :func:`reduce_pair` builds on a block Krylov subspace of
  ``(G + s0 C)^{-1} C``, so for symmetric ``G`` (SPD Stieltjes) and
  diagonal PSD ``C`` it must match the first ``2 q`` moments of the
  transfer function ``H(s) = B' (G + s C)^{-1} B`` at the expansion
  shift — the classic symmetric-Lanczos / PRIMA property the transient
  ROM's accuracy rests on.
* **Basis mechanics** — orthonormality, deflation of dependent start
  columns, the ``max_dim`` cap, and the ``rom`` mode resolution used
  by the simulators.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.mor import (
    ROM_AUTO_MIN_NODES,
    block_arnoldi,
    moments,
    reduce_pair,
    resolve_rom_mode,
)
from repro.linalg.stieltjes import random_stieltjes

_sizes = st.integers(min_value=6, max_value=14)
_seeds = st.integers(min_value=0, max_value=2**31)
_blocks = st.integers(min_value=1, max_value=3)
_inputs = st.integers(min_value=1, max_value=2)

_settings = settings(max_examples=25, deadline=None)


def _random_pair(n, seed):
    """A random SPD Stieltjes ``G`` with a positive diagonal ``C``."""
    rng = np.random.default_rng(seed)
    g = random_stieltjes(n, density=0.6, seed=seed)
    c = np.diag(rng.uniform(0.5, 2.0, size=n))
    return g, c, rng


class TestBlockArnoldi:
    def test_orthonormal_basis(self):
        g, c, rng = _random_pair(10, 3)
        m0 = np.linalg.inv(g + c)
        start = m0 @ rng.standard_normal((10, 2))
        basis = block_arnoldi(lambda blk: m0 @ (c @ blk), start, 8)
        assert basis.shape[0] == 10
        np.testing.assert_allclose(
            basis.T @ basis, np.eye(basis.shape[1]), atol=1e-10
        )

    def test_deflates_dependent_columns(self):
        g, c, rng = _random_pair(10, 4)
        m0 = np.linalg.inv(g + c)
        column = m0 @ rng.standard_normal((10, 1))
        start = np.column_stack([column, 2.0 * column])  # rank one
        basis = block_arnoldi(lambda blk: m0 @ (c @ blk), start, 6)
        # The duplicate start column must be deflated, not orthogonalized
        # into noise: the basis stays orthonormal and under the cap.
        np.testing.assert_allclose(
            basis.T @ basis, np.eye(basis.shape[1]), atol=1e-10
        )
        assert basis.shape[1] <= 6

    def test_respects_max_dim(self):
        g, c, rng = _random_pair(12, 5)
        m0 = np.linalg.inv(g + c)
        start = m0 @ rng.standard_normal((12, 3))
        basis = block_arnoldi(lambda blk: m0 @ (c @ blk), start, 5)
        assert basis.shape[1] <= 5

    def test_rejects_bad_max_dim(self):
        with pytest.raises(ValueError):
            block_arnoldi(lambda blk: blk, np.ones((4, 1)), 0)


class TestMomentMatching:
    @given(n=_sizes, seed=_seeds, q=_blocks, m=_inputs)
    @_settings
    def test_first_2q_moments_match(self, n, seed, q, m):
        g, c, rng = _random_pair(n, seed)
        b = rng.standard_normal((n, m))
        shift = 1.0e3  # 1/dt for a millisecond step
        v, g_r, c_r, b_r = reduce_pair(g, c, b, shift=shift, blocks=q)
        full = moments(g, c, b, shift=shift, count=2 * q)
        reduced = moments(g_r, c_r, b_r, shift=shift, count=2 * q)
        for j, (m_full, m_red) in enumerate(zip(full, reduced)):
            scale = max(float(np.max(np.abs(m_full))), 1e-30)
            np.testing.assert_allclose(
                m_red, m_full, atol=1e-7 * scale,
                err_msg="moment {} of {}".format(j, 2 * q),
            )

    @given(n=_sizes, seed=_seeds)
    @_settings
    def test_exact_when_basis_spans(self, n, seed):
        # Enough blocks to exhaust the space: the ROM is then the full
        # model in another basis and every moment matches.
        g, c, rng = _random_pair(n, seed)
        b = rng.standard_normal((n, 1))
        v, g_r, c_r, b_r = reduce_pair(g, c, b, shift=50.0, blocks=n)
        full = moments(g, c, b, shift=50.0, count=4)
        reduced = moments(g_r, c_r, b_r, shift=50.0, count=4)
        for m_full, m_red in zip(full, reduced):
            scale = max(float(np.max(np.abs(m_full))), 1e-30)
            np.testing.assert_allclose(m_red, m_full, atol=1e-8 * scale)

    def test_rejects_bad_blocks(self):
        g, c, _ = _random_pair(6, 0)
        with pytest.raises(ValueError):
            reduce_pair(g, c, np.ones(6), shift=1.0, blocks=0)


class TestResolveRomMode:
    def test_literal_modes(self):
        assert resolve_rom_mode("always", 10) is True
        assert resolve_rom_mode("off", 10**6) is False

    def test_auto_threshold(self):
        assert resolve_rom_mode("auto", ROM_AUTO_MIN_NODES - 1) is False
        assert resolve_rom_mode("auto", ROM_AUTO_MIN_NODES) is True

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            resolve_rom_mode("sometimes", 10)
