"""Property-based tests of the paper's matrix theorems (hypothesis).

Randomized conductance networks from :func:`random_stieltjes` are the
quantification domain of the paper's linear-algebra layer.  Three
levels are pinned here:

* **Lemma 1 class membership** — every generated ``G`` is an
  irreducible positive definite Stieltjes matrix, for any density.
* **Theorem 1, variational form** — ``lambda_m`` computed by
  :func:`runaway_current_eigen` equals the generalized-eigenvalue
  definition: the smallest positive ``lambda`` with
  ``G x = lambda D x``, i.e. ``1 / mu_max`` for the pencil
  ``D x = mu G x`` (symmetric-definite, solved with ``scipy.linalg.eigh``).
* **Theorem 2, runaway blow-up** — entries of ``(G - i D)^{-1}`` grow
  toward the runaway current.  For ``D >= 0`` the growth is provably
  entrywise monotone over the whole range (``dH/di = H D H >= 0``
  because ``G - i D`` stays Stieltjes, so ``H >= 0``); for the paper's
  mixed-sign hot/cold ``D`` the divergent rank-one term
  ``v v' / (lambda_m - i)`` dominates near the pole, so every entry
  grows strictly on the approach and the peak entry scales like
  ``1 / (lambda_m - i)``.
"""

import numpy as np
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.irreducible import is_irreducible
from repro.linalg.runaway import runaway_current_eigen
from repro.linalg.spd import cholesky_is_spd
from repro.linalg.stieltjes import is_stieltjes, random_stieltjes

_sizes = st.integers(min_value=3, max_value=10)
_seeds = st.integers(min_value=0, max_value=2**31)
_densities = st.floats(min_value=0.0, max_value=1.0)

_settings = settings(max_examples=25, deadline=None)


def _mixed_sign_d(n, seed, alpha):
    """A paper-style Peltier diagonal: +alpha on hot nodes, -alpha on
    the matching cold nodes (at least one pair)."""
    rng = np.random.default_rng(seed)
    pairs = max(1, n // 3)
    nodes = rng.choice(n, size=2 * pairs, replace=False)
    diag = np.zeros(n)
    diag[nodes[:pairs]] = alpha
    diag[nodes[pairs:]] = -alpha
    return diag


def _nonnegative_d(n, seed, alpha):
    """A non-negative diagonal with at least one positive entry."""
    rng = np.random.default_rng(seed)
    count = int(rng.integers(1, n + 1))
    diag = np.zeros(n)
    diag[rng.choice(n, size=count, replace=False)] = rng.uniform(
        0.2 * alpha, alpha, size=count
    )
    return diag


class TestLemma1Class:
    @given(_sizes, _seeds, _densities)
    @_settings
    def test_generator_stays_in_the_lemma1_class(self, n, seed, density):
        """Irreducible + Stieltjes + SPD at every density (the spanning
        tree guarantees connectivity even at density 0)."""
        matrix = random_stieltjes(n, density=density, seed=seed)
        assert is_stieltjes(matrix)
        assert is_irreducible(matrix)
        assert cholesky_is_spd(matrix)


class TestTheorem1GeneralizedEigenvalue:
    @given(_sizes, _seeds, st.floats(min_value=0.02, max_value=0.4))
    @_settings
    def test_lambda_m_matches_pencil_definition(self, n, seed, alpha):
        """lambda_m = 1 / mu_max for the pencil D x = mu G x."""
        g = random_stieltjes(n, seed=seed)
        d = _mixed_sign_d(n, seed + 1, alpha)
        lam = runaway_current_eigen(g, d).value
        # G is SPD, so eigh solves the symmetric-definite pencil exactly.
        mu = scipy.linalg.eigh(np.diag(d), g, eigvals_only=True)
        mu_max = float(np.max(mu))
        assert mu_max > 0.0
        np.testing.assert_allclose(lam, 1.0 / mu_max, rtol=1e-9)

    @given(_sizes, _seeds, st.floats(min_value=0.02, max_value=0.4))
    @_settings
    def test_dichotomy_at_lambda_m(self, n, seed, alpha):
        """G - iD flips definiteness exactly at the computed value."""
        g = random_stieltjes(n, seed=seed)
        d = _mixed_sign_d(n, seed + 1, alpha)
        lam = runaway_current_eigen(g, d).value
        assert cholesky_is_spd(g - 0.99 * lam * np.diag(d))
        assert not cholesky_is_spd(g - 1.01 * lam * np.diag(d))


class TestTheorem2Growth:
    @given(_sizes, _seeds, st.floats(min_value=0.05, max_value=0.5))
    @_settings
    def test_entrywise_monotone_for_nonnegative_d(self, n, seed, alpha):
        """With D >= 0 the inverse grows entrywise over the whole
        current range: H(i2) >= H(i1) for i1 <= i2 < lambda_m."""
        g = random_stieltjes(n, seed=seed)
        d = _nonnegative_d(n, seed + 1, alpha)
        lam = runaway_current_eigen(g, d).value
        previous = None
        for fraction in (0.0, 0.25, 0.5, 0.8, 0.95):
            h = np.linalg.inv(g - fraction * lam * np.diag(d))
            if previous is not None:
                assert np.all(h - previous >= -1e-9)
            previous = h

    @given(_sizes, _seeds, st.floats(min_value=0.02, max_value=0.4))
    @_settings
    def test_blow_up_toward_runaway_for_mixed_d(self, n, seed, alpha):
        """Near lambda_m every entry grows strictly and the peak entry
        scales like the pole 1/(lambda_m - i): a 10x shrink of the
        distance grows it by far more than the bounded remainder."""
        g = random_stieltjes(n, seed=seed)
        d = _mixed_sign_d(n, seed + 1, alpha)
        lam = runaway_current_eigen(g, d).value
        h90 = np.linalg.inv(g - 0.90 * lam * np.diag(d))
        h99 = np.linalg.inv(g - 0.99 * lam * np.diag(d))
        h999 = np.linalg.inv(g - 0.999 * lam * np.diag(d))
        assert np.all(h99 > h90)
        assert np.all(h999 > h99)
        assert np.all(h999 > 0.0)
        assert np.max(h999) > 5.0 * np.max(h99)
