"""Stieltjes predicates, direct sums and the random generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.spd import cholesky_is_spd
from repro.linalg.stieltjes import (
    direct_sum,
    is_stieltjes,
    is_symmetric,
    random_stieltjes,
    stieltjes_violation,
)


class TestIsSymmetric:
    def test_symmetric(self):
        assert is_symmetric(np.array([[2.0, -1.0], [-1.0, 2.0]]))

    def test_asymmetric(self):
        assert not is_symmetric(np.array([[2.0, -1.0], [0.0, 2.0]]))

    def test_non_square(self):
        assert not is_symmetric(np.zeros((2, 3)))

    def test_tolerance_scales_with_magnitude(self):
        big = np.array([[1e12, -1e3], [-1e3 * (1 + 1e-14), 1e12]])
        assert is_symmetric(big)


class TestIsStieltjes:
    def test_laplacian_plus_diagonal(self):
        matrix = np.array([[2.0, -1.0], [-1.0, 2.0]])
        assert is_stieltjes(matrix)

    def test_positive_offdiagonal_rejected(self):
        assert not is_stieltjes(np.array([[2.0, 0.5], [0.5, 2.0]]))

    def test_asymmetric_rejected(self):
        assert not is_stieltjes(np.array([[2.0, -1.0], [-2.0, 2.0]]))

    def test_negative_diagonal_is_still_stieltjes(self):
        # Definition 3 constrains only symmetry and off-diagonal signs.
        assert is_stieltjes(np.array([[-1.0, 0.0], [0.0, -1.0]]))

    def test_violation_measures(self):
        asym, pos = stieltjes_violation(np.array([[1.0, 0.3], [0.1, 1.0]]))
        assert asym == pytest.approx(0.2)
        assert pos == pytest.approx(0.3)

    def test_violation_zero_for_stieltjes(self):
        asym, pos = stieltjes_violation(np.array([[2.0, -1.0], [-1.0, 2.0]]))
        assert asym == 0.0 and pos == 0.0


class TestDirectSum:
    def test_block_structure(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0]])
        out = direct_sum(a, b)
        assert out.shape == (3, 3)
        assert np.array_equal(out[:2, :2], a)
        assert out[2, 2] == 5.0
        assert np.all(out[:2, 2] == 0.0) and np.all(out[2, :2] == 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            direct_sum(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_direct_sum_of_stieltjes_is_stieltjes_but_reducible(self):
        from repro.linalg.irreducible import is_irreducible

        s = random_stieltjes(3, seed=1)
        combined = direct_sum(s, s)
        assert is_stieltjes(combined)
        assert not is_irreducible(combined)


class TestRandomStieltjes:
    def test_is_stieltjes(self):
        assert is_stieltjes(random_stieltjes(10, seed=3))

    def test_is_positive_definite(self):
        assert cholesky_is_spd(random_stieltjes(10, seed=3))

    def test_deterministic_by_seed(self):
        assert np.array_equal(random_stieltjes(6, seed=5), random_stieltjes(6, seed=5))

    def test_n_one(self):
        matrix = random_stieltjes(1, seed=0)
        assert matrix.shape == (1, 1) and matrix[0, 0] > 0.0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            random_stieltjes(0)

    def test_connected_by_default(self):
        from repro.linalg.irreducible import is_irreducible

        # Even at zero density the spanning tree keeps it irreducible.
        matrix = random_stieltjes(12, density=0.0, seed=7)
        assert is_irreducible(matrix)

    def test_disconnected_possible_when_disabled(self):
        matrix = random_stieltjes(12, density=0.0, connected=False, seed=7)
        off = matrix - np.diag(np.diag(matrix))
        assert np.all(off == 0.0)

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_random_instances_are_pd_stieltjes(self, n, seed):
        matrix = random_stieltjes(n, seed=seed)
        assert is_stieltjes(matrix)
        assert cholesky_is_spd(matrix)
