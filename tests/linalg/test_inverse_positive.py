"""Inverse-positivity of PD Stieltjes matrices (Lemma 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.inverse_positive import (
    inverse_is_nonnegative,
    inverse_nonnegative_matrix,
    inverse_positivity_margin,
)
from repro.linalg.stieltjes import direct_sum, random_stieltjes


class TestInverseNonnegativeMatrix:
    def test_inverse_is_actual_inverse(self):
        matrix = random_stieltjes(9, seed=1)
        inverse = inverse_nonnegative_matrix(matrix)
        assert np.allclose(matrix @ inverse, np.eye(9), atol=1e-9)

    def test_entries_nonnegative(self):
        inverse = inverse_nonnegative_matrix(random_stieltjes(9, seed=2))
        assert np.all(inverse >= -1e-12)

    def test_symmetric(self):
        inverse = inverse_nonnegative_matrix(random_stieltjes(9, seed=3))
        assert np.allclose(inverse, inverse.T)

    def test_check_rejects_non_stieltjes(self):
        with pytest.raises(ValueError, match="Stieltjes"):
            inverse_nonnegative_matrix(np.array([[1.0, 0.5], [0.5, 1.0]]))

    def test_check_rejects_indefinite(self):
        with pytest.raises(ValueError, match="positive definite"):
            inverse_nonnegative_matrix(np.array([[1.0, -2.0], [-2.0, 1.0]]))

    def test_check_false_skips_validation(self):
        # A non-Stieltjes SPD matrix inverts fine with check disabled.
        matrix = np.array([[2.0, 0.5], [0.5, 2.0]])
        inverse = inverse_nonnegative_matrix(matrix, check=False)
        assert np.allclose(matrix @ inverse, np.eye(2))


class TestInverseIsNonnegative:
    def test_true_for_random_stieltjes(self):
        assert inverse_is_nonnegative(random_stieltjes(8, seed=4))

    def test_false_for_indefinite_without_raising(self):
        assert not inverse_is_nonnegative(-np.eye(3))

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_lemma3(self, n, seed):
        """Lemma 3 on random instances: PD Stieltjes => nonneg inverse."""
        assert inverse_is_nonnegative(random_stieltjes(n, seed=seed))


class TestStrictPositivity:
    def test_irreducible_gives_strictly_positive_inverse(self):
        margin = inverse_positivity_margin(random_stieltjes(10, seed=5))
        assert margin > 0.0

    def test_reducible_gives_zero_blocks(self):
        a = random_stieltjes(3, seed=6)
        combined = direct_sum(a, a)
        margin = inverse_positivity_margin(combined)
        assert margin == pytest.approx(0.0, abs=1e-12)
